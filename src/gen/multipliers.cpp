#include "src/gen/multipliers.hpp"

#include <stdexcept>
#include <string>

#include "src/gen/bitvec.hpp"

namespace axf::gen {

using circuit::GateKind;
using circuit::kInvalidNode;
using circuit::Netlist;
using circuit::NodeId;

namespace {

void checkWidth(int n) {
    if (n < 2 || n > 16) throw std::invalid_argument("multiplier width must be in [2, 16]");
}

/// Partial-product matrix pp[i][j] = a_i & b_j (weight i + j).
std::vector<Bits> partialProducts(Netlist& net, const Bits& a, const Bits& b) {
    std::vector<Bits> pp(a.size(), Bits(b.size()));
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j)
            pp[i][j] = net.addGate(GateKind::And, a[i], b[j]);
    return pp;
}

void markOutputs(Netlist& net, const Bits& bits) {
    for (NodeId bit : bits) net.markOutput(bit);
}

}  // namespace

circuit::Netlist arrayMultiplier(int n) {
    checkWidth(n);
    Netlist net("mul" + std::to_string(n) + "_array");
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    const std::vector<Bits> pp = partialProducts(net, a, b);

    // Row-by-row accumulation: after row i the bits [0, i+n] are final.
    Bits acc(static_cast<std::size_t>(2 * n), kInvalidNode);
    for (int j = 0; j < n; ++j) acc[static_cast<std::size_t>(j)] = pp[0][static_cast<std::size_t>(j)];
    for (int i = 1; i < n; ++i) {
        NodeId carry = kInvalidNode;
        for (int j = 0; j < n; ++j) {
            const auto w = static_cast<std::size_t>(i + j);
            const NodeId addend = pp[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            if (acc[w] == kInvalidNode) {
                // Accumulator bit not produced yet (top of the previous row):
                // only the addend and the running carry contribute here.
                if (carry == kInvalidNode) {
                    acc[w] = addend;
                } else {
                    const SumCarry sc = halfAdder(net, addend, carry);
                    acc[w] = sc.sum;
                    carry = sc.carry;
                }
            } else if (carry == kInvalidNode) {
                const SumCarry sc = halfAdder(net, acc[w], addend);
                acc[w] = sc.sum;
                carry = sc.carry;
            } else {
                const SumCarry sc = fullAdder(net, acc[w], addend, carry);
                acc[w] = sc.sum;
                carry = sc.carry;
            }
        }
        acc[static_cast<std::size_t>(i + n)] = carry == kInvalidNode ? net.addConst(false) : carry;
    }
    acc[static_cast<std::size_t>(2 * n - 1)] =
        acc[static_cast<std::size_t>(2 * n - 1)] == kInvalidNode
            ? net.addConst(false)
            : acc[static_cast<std::size_t>(2 * n - 1)];
    markOutputs(net, acc);
    return net;
}

circuit::Netlist wallaceMultiplier(int n) {
    checkWidth(n);
    Netlist net("mul" + std::to_string(n) + "_wallace");
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    ColumnStack stack(2 * n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            stack.push(i + j, net.addGate(GateKind::And, a[static_cast<std::size_t>(i)],
                                          b[static_cast<std::size_t>(j)]));
    markOutputs(net, stack.reduceAndSum(net));
    return net;
}

circuit::Netlist truncatedMultiplier(int n, int truncatedColumns) {
    checkWidth(n);
    if (truncatedColumns < 0 || truncatedColumns > 2 * n)
        throw std::invalid_argument("truncatedColumns out of range");
    Netlist net("mul" + std::to_string(n) + "_trunc" + std::to_string(truncatedColumns));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    ColumnStack stack(2 * n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (i + j >= truncatedColumns)
                stack.push(i + j, net.addGate(GateKind::And, a[static_cast<std::size_t>(i)],
                                              b[static_cast<std::size_t>(j)]));
    Bits result = stack.reduceAndSum(net);
    for (int w = 0; w < truncatedColumns && w < 2 * n; ++w)
        result[static_cast<std::size_t>(w)] = net.addConst(false);
    markOutputs(net, result);
    return net;
}

circuit::Netlist brokenArrayMultiplier(int n, int horizontalBreak, int verticalBreak) {
    checkWidth(n);
    if (horizontalBreak < 0 || horizontalBreak > 2 * n)
        throw std::invalid_argument("horizontalBreak out of range");
    if (verticalBreak < 0 || verticalBreak > n)
        throw std::invalid_argument("verticalBreak out of range");
    Netlist net("mul" + std::to_string(n) + "_bam_h" + std::to_string(horizontalBreak) + "v" +
                std::to_string(verticalBreak));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    ColumnStack stack(2 * n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i + j < horizontalBreak) continue;  // cells below the horizontal break
            if (j < verticalBreak && i + j < n) continue;  // triangular vertical cut
            stack.push(i + j, net.addGate(GateKind::And, a[static_cast<std::size_t>(i)],
                                          b[static_cast<std::size_t>(j)]));
        }
    }
    markOutputs(net, stack.reduceAndSum(net));
    return net;
}

namespace {

/// Approximate 2x2 block: exact except 3*3 = 9 is encoded as 7 so the
/// result fits in three bits (Kulkarni et al.).
Bits kulkarni2x2(Netlist& net, const Bits& a, const Bits& b) {
    const NodeId p0 = net.addGate(GateKind::And, a[0], b[0]);
    const NodeId t1 = net.addGate(GateKind::And, a[1], b[0]);
    const NodeId t2 = net.addGate(GateKind::And, a[0], b[1]);
    const NodeId p1 = net.addGate(GateKind::Or, t1, t2);
    const NodeId p2 = net.addGate(GateKind::And, a[1], b[1]);
    return {p0, p1, p2};
}

/// Recursive composition: returns the (possibly narrowed) product bits of
/// the two operand slices, LSB-first.
Bits kulkarniRecurse(Netlist& net, const Bits& a, const Bits& b) {
    if (a.size() == 2) return kulkarni2x2(net, a, b);
    const std::size_t half = a.size() / 2;
    const Bits aL(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(half));
    const Bits aH(a.begin() + static_cast<std::ptrdiff_t>(half), a.end());
    const Bits bL(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(half));
    const Bits bH(b.begin() + static_cast<std::ptrdiff_t>(half), b.end());

    const Bits ll = kulkarniRecurse(net, aL, bL);
    const Bits lh = kulkarniRecurse(net, aL, bH);
    const Bits hl = kulkarniRecurse(net, aH, bL);
    const Bits hh = kulkarniRecurse(net, aH, bH);

    ColumnStack stack(static_cast<int>(2 * a.size()));
    for (std::size_t k = 0; k < ll.size(); ++k) stack.push(static_cast<int>(k), ll[k]);
    for (std::size_t k = 0; k < lh.size(); ++k) stack.push(static_cast<int>(half + k), lh[k]);
    for (std::size_t k = 0; k < hl.size(); ++k) stack.push(static_cast<int>(half + k), hl[k]);
    for (std::size_t k = 0; k < hh.size(); ++k) stack.push(static_cast<int>(2 * half + k), hh[k]);
    return stack.reduceAndSum(net);
}

}  // namespace

circuit::Netlist kulkarniMultiplier(int n) {
    checkWidth(n);
    if ((n & (n - 1)) != 0) throw std::invalid_argument("kulkarniMultiplier: n must be a power of 2");
    Netlist net("mul" + std::to_string(n) + "_kulkarni");
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);
    Bits result = kulkarniRecurse(net, a, b);
    result.resize(static_cast<std::size_t>(2 * n), kInvalidNode);
    for (NodeId& bit : result)
        if (bit == kInvalidNode) bit = net.addConst(false);
    markOutputs(net, result);
    return net;
}

circuit::Netlist approxCompressorMultiplier(int n, int approxColumns) {
    checkWidth(n);
    if (approxColumns < 0 || approxColumns > 2 * n)
        throw std::invalid_argument("approxColumns out of range");
    Netlist net("mul" + std::to_string(n) + "_cmp" + std::to_string(approxColumns));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    // Columns below the threshold collapse to a saturating OR (carry-less
    // column compression); the rest reduce exactly.
    ColumnStack stack(2 * n);
    std::vector<Bits> lowColumns(static_cast<std::size_t>(approxColumns));
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            const int w = i + j;
            const NodeId pp = net.addGate(GateKind::And, a[static_cast<std::size_t>(i)],
                                          b[static_cast<std::size_t>(j)]);
            if (w < approxColumns)
                lowColumns[static_cast<std::size_t>(w)].push_back(pp);
            else
                stack.push(w, pp);
        }
    }
    Bits lowBits(static_cast<std::size_t>(approxColumns), kInvalidNode);
    for (int w = 0; w < approxColumns; ++w) {
        const Bits& col = lowColumns[static_cast<std::size_t>(w)];
        if (col.empty()) {
            lowBits[static_cast<std::size_t>(w)] = net.addConst(false);
            continue;
        }
        NodeId acc = col[0];
        for (std::size_t k = 1; k < col.size(); ++k)
            acc = net.addGate(GateKind::Or, acc, col[k]);
        lowBits[static_cast<std::size_t>(w)] = acc;
    }
    const Bits highBits = stack.reduceAndSum(net);
    Bits result;
    result.reserve(static_cast<std::size_t>(2 * n));
    for (int w = 0; w < approxColumns; ++w) result.push_back(lowBits[static_cast<std::size_t>(w)]);
    for (int w = approxColumns; w < 2 * n; ++w)
        result.push_back(highBits[static_cast<std::size_t>(w)]);
    markOutputs(net, result);
    return net;
}

namespace {

/// hi[i] = OR of bits above position i (hi[n-1] = 0).
Bits prefixHigher(Netlist& net, const Bits& bits) {
    Bits hi(bits.size());
    NodeId acc = net.addConst(false);
    for (std::size_t i = bits.size(); i-- > 0;) {
        hi[i] = acc;
        acc = net.addGate(GateKind::Or, acc, bits[i]);
    }
    return hi;
}

/// One-hot leading-one detector: lead[i] = bits[i] & ~hi[i].
Bits leadingOneOneHot(Netlist& net, const Bits& bits, const Bits& hi) {
    Bits lead(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i)
        lead[i] = net.addGate(GateKind::AndNot, bits[i], hi[i]);
    return lead;
}

/// Binary encoding of a one-hot vector where onehot[i] encodes `values[i]`:
/// enc[b] = OR of onehot[i] over all i whose value has bit b set.
Bits encodeOneHot(Netlist& net, const Bits& onehot, const std::vector<int>& values, int width) {
    Bits enc(static_cast<std::size_t>(width));
    for (int b = 0; b < width; ++b) {
        NodeId acc = net.addConst(false);
        for (std::size_t i = 0; i < onehot.size(); ++i)
            if ((values[i] >> b) & 1) acc = net.addGate(GateKind::Or, acc, onehot[i]);
        enc[static_cast<std::size_t>(b)] = acc;
    }
    return enc;
}

/// Logarithmic barrel shifter: shifts `word` left by the binary amount in
/// `shift` (LSB first); bits shifted beyond the word width are dropped.
Bits barrelShiftLeft(Netlist& net, Bits word, const Bits& shift) {
    for (std::size_t stage = 0; stage < shift.size(); ++stage) {
        const std::size_t amount = std::size_t{1} << stage;
        Bits next(word.size());
        const NodeId zero = net.addConst(false);
        for (std::size_t i = 0; i < word.size(); ++i) {
            const NodeId from = i >= amount ? word[i - amount] : zero;
            next[i] = net.addGate(GateKind::Mux, word[i], from, shift[stage]);
        }
        word = std::move(next);
    }
    return word;
}

int bitsFor(int maxValue) {
    int w = 1;
    while ((1 << w) <= maxValue) ++w;
    return w;
}

}  // namespace

circuit::Netlist drumMultiplier(int n, int k) {
    checkWidth(n);
    if (k < 2 || k >= n) throw std::invalid_argument("drumMultiplier: need 2 <= k < n");
    Netlist net("mul" + std::to_string(n) + "_drum" + std::to_string(k));
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    // Reduce one operand to its k leading bits plus a binary shift amount.
    struct Reduced {
        Bits bits;   ///< k-bit significand
        Bits shift;  ///< binary shift amount (position of the kept window)
    };
    const auto reduce = [&](const Bits& op) {
        const Bits hi = prefixHigher(net, op);
        const Bits lead = leadingOneOneHot(net, op, hi);
        // Window select: shift s > 0 iff the leading one sits at s+k-1;
        // s = 0 iff the value fits in k bits (nothing above bit k-1).
        const int maxShift = static_cast<int>(op.size()) - k;
        Bits sel(static_cast<std::size_t>(maxShift) + 1);
        sel[0] = net.addGate(GateKind::Not, hi[static_cast<std::size_t>(k - 1)]);
        for (int s = 1; s <= maxShift; ++s)
            sel[static_cast<std::size_t>(s)] = lead[static_cast<std::size_t>(s + k - 1)];

        Reduced r;
        r.bits.resize(static_cast<std::size_t>(k));
        for (int j = 0; j < k; ++j) {
            NodeId acc = net.addConst(false);
            for (int s = 0; s <= maxShift; ++s) {
                const NodeId term = net.addGate(GateKind::And, sel[static_cast<std::size_t>(s)],
                                                op[static_cast<std::size_t>(s + j)]);
                acc = net.addGate(GateKind::Or, acc, term);
            }
            r.bits[static_cast<std::size_t>(j)] = acc;
        }
        // Unbiasing: force the kept LSB to 1 whenever truncation occurred.
        r.bits[0] = net.addGate(GateKind::Or, r.bits[0], hi[static_cast<std::size_t>(k - 1)]);

        std::vector<int> values(static_cast<std::size_t>(maxShift) + 1);
        for (int s = 0; s <= maxShift; ++s) values[static_cast<std::size_t>(s)] = s;
        r.shift = encodeOneHot(net, sel, values, bitsFor(maxShift));
        return r;
    };

    const Reduced ra = reduce(a);
    const Reduced rb = reduce(b);

    // k x k exact core on the reduced significands.
    ColumnStack stack(2 * n);
    for (int i = 0; i < k; ++i)
        for (int j = 0; j < k; ++j)
            stack.push(i + j, net.addGate(GateKind::And, ra.bits[static_cast<std::size_t>(i)],
                                          rb.bits[static_cast<std::size_t>(j)]));
    const Bits core = stack.reduceAndSum(net);

    // Shift the core product back by shiftA + shiftB.
    const Bits totalShift = rippleSum(net, ra.shift, rb.shift);
    markOutputs(net, barrelShiftLeft(net, core, totalShift));
    return net;
}

circuit::Netlist mitchellMultiplier(int n) {
    checkWidth(n);
    if (n < 3) throw std::invalid_argument("mitchellMultiplier: n must be >= 3");
    Netlist net("mul" + std::to_string(n) + "_mitchell");
    const Bits a = addOperand(net, n);
    const Bits b = addOperand(net, n);

    const int fracBits = n - 1;
    const int charBits = bitsFor(n - 1);

    // Approximate log2: characteristic = leading-one position t, mantissa =
    // the bits below the leading one, left-aligned to fracBits.
    struct LogValue {
        Bits value;     ///< fracBits + charBits, fraction in the low part
        NodeId isZero;  ///< operand was zero (log undefined)
    };
    const auto approxLog = [&](const Bits& op) {
        const Bits hi = prefixHigher(net, op);
        const Bits lead = leadingOneOneHot(net, op, hi);
        // Left-align: shift by (n-1 - t).
        std::vector<int> alignAmount(op.size());
        for (std::size_t t = 0; t < op.size(); ++t)
            alignAmount[t] = static_cast<int>(op.size()) - 1 - static_cast<int>(t);
        const Bits align = encodeOneHot(net, lead, alignAmount, bitsFor(n - 1));
        const Bits aligned = barrelShiftLeft(net, op, align);

        std::vector<int> charValue(op.size());
        for (std::size_t t = 0; t < op.size(); ++t) charValue[t] = static_cast<int>(t);
        const Bits characteristic = encodeOneHot(net, lead, charValue, charBits);

        LogValue lv;
        // Fraction: aligned bits below the (now top) leading one.
        for (int i = 0; i < fracBits; ++i) lv.value.push_back(aligned[static_cast<std::size_t>(i)]);
        for (int i = 0; i < charBits; ++i)
            lv.value.push_back(characteristic[static_cast<std::size_t>(i)]);
        lv.isZero = net.addGate(GateKind::Nor, hi[0], op[0]);  // no one anywhere
        return lv;
    };

    const LogValue la = approxLog(a);
    const LogValue lb = approxLog(b);
    const Bits logSum = rippleSum(net, la.value, lb.value);  // fracBits+charBits+1 wide

    // Antilog: product ~ (2^fracBits + F) << I, rescaled by 2^-fracBits.
    // Build the mantissa at bit 0, shift by I, then read the window that
    // implements the >> fracBits rescale.
    Bits mantissa;
    for (int i = 0; i < fracBits; ++i) mantissa.push_back(logSum[static_cast<std::size_t>(i)]);
    mantissa.push_back(net.addConst(true));  // the implicit leading one
    const int wideWidth = fracBits + 2 * n;
    mantissa.resize(static_cast<std::size_t>(wideWidth), net.addConst(false));

    Bits intPart;
    for (std::size_t i = static_cast<std::size_t>(fracBits); i < logSum.size(); ++i)
        intPart.push_back(logSum[i]);
    const Bits shifted = barrelShiftLeft(net, mantissa, intPart);

    // Zero handling: either operand zero forces a zero product.
    const NodeId anyZero = net.addGate(GateKind::Or, la.isZero, lb.isZero);
    for (int i = 0; i < 2 * n; ++i)
        net.markOutput(net.addGate(GateKind::AndNot,
                                   shifted[static_cast<std::size_t>(fracBits + i)], anyZero));
    return net;
}

}  // namespace axf::gen
