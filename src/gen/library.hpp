#pragma once

#include <string>
#include <vector>

#include "src/cache/characterization_cache.hpp"
#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"
#include "src/error/error_metrics.hpp"

namespace axf::gen {

/// One entry of the approximate-circuit library (the unit the ApproxFPGAs
/// methodology explores).  Netlists are stored post-`simplify`.
struct LibraryCircuit {
    std::string name;
    std::string origin;  ///< generator family ("loa", "cgp", "bam", ...)
    circuit::Netlist netlist;
    circuit::ArithSignature signature;
    error::ErrorReport error;
};

/// A homogeneous library (one operator, one bit-width), e.g. "the 4,494
/// 8x8 unsigned approximate multipliers" of the paper.
using AcLibrary = std::vector<LibraryCircuit>;

/// Library-generation policy.
struct LibraryConfig {
    circuit::ArithOp op = circuit::ArithOp::Multiplier;
    int width = 8;

    /// MED budgets the CGP runs target; each budget contributes one run per
    /// seed architecture and harvests every accepted novel design.
    std::vector<double> medBudgets = {0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05};
    int cgpGenerations = 220;
    int cgpLambda = 4;
    std::uint64_t seed = 0xA90F5;

    /// Error-analysis policy for both CGP fitness and final reports.
    error::ErrorAnalysisConfig errorConfig;

    /// Optional cap on the library size (0 = unlimited).  When capped, a
    /// deterministic uniform thinning keeps the error spread intact.
    std::size_t maxCircuits = 0;

    /// Skip the (slow) evolutionary part; structural families only.
    bool structuralOnly = false;

    /// Optional characterization cache (not owned).  When set, the
    /// simplify+error-analysis pipeline reuses content-addressed results
    /// from earlier builds (same or other processes via the on-disk
    /// store); null keeps the fully-recomputing behavior.  Warm builds are
    /// bit-identical to cold builds at any thread count.
    cache::CharacterizationCache* cache = nullptr;

    /// Cooperative cancellation for the whole build, checked at candidate
    /// and CGP-run boundaries and threaded into the characterization
    /// fan-outs.  A cancelled build throws util::OperationCancelled; work
    /// already characterized stays warm in `cache` for the retry.
    const util::CancellationToken* cancel = nullptr;
};

/// Generates the full library for the configuration: structural families
/// (exact + parameter sweeps of classic approximate architectures) plus
/// CGP-evolved designs, deduplicated by structural hash and annotated with
/// their error profiles.
AcLibrary buildLibrary(const LibraryConfig& config);

/// Structural families only (deterministic, no evolution).
AcLibrary buildStructuralFamilies(const LibraryConfig& config);

/// Convenience: the signature shared by all circuits of a config.
circuit::ArithSignature librarySignature(const LibraryConfig& config);

}  // namespace axf::gen
