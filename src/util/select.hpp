#pragma once

#include <cstddef>
#include <vector>

namespace axf::util {

/// Thins a sorted vector down to `cap` entries by the endpoint-exact
/// uniform stride i*(n-1)/(cap-1): strictly increasing whenever n > cap,
/// keeps both extremes, never duplicates an element (a naive
/// `i * n/cap` stride drops the last element, and patching it back in
/// afterwards can clone an already-selected one).
///
/// `cap == 0` means unlimited (no-op); `cap == 1` keeps the first entry.
template <typename T>
void thinUniform(std::vector<T>& items, std::size_t cap) {
    if (cap == 0 || items.size() <= cap) return;
    std::vector<T> kept;
    kept.reserve(cap);
    const std::size_t n = items.size();
    if (cap == 1) {
        kept.push_back(std::move(items.front()));
    } else {
        for (std::size_t i = 0; i < cap; ++i)
            kept.push_back(std::move(items[i * (n - 1) / (cap - 1)]));
    }
    items = std::move(kept);
}

}  // namespace axf::util
