#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/util/cancellation.hpp"

namespace axf::util {

/// Reusable worker-thread pool shared by the characterization pipeline
/// (error analysis, CGP offspring evaluation, library builds).
///
/// Design points:
///  - `parallelFor` is work-sharing: the calling thread participates, so a
///    pool of size 1 (or 0) degrades to a plain serial loop with no
///    hand-off latency.
///  - Calls from inside a worker thread run inline (no task submission),
///    which makes nested parallelism — e.g. a parallel `analyzeError`
///    inside a parallel library build — deadlock-free by construction.
///  - The pool only schedules *where* work runs; every consumer in this
///    codebase is written so results are merged in a deterministic order,
///    keeping reports bit-identical to serial execution.
class ThreadPool {
public:
    /// `threads == 0` sizes the pool to the AXF_THREADS environment
    /// override when set (<= 1 means fully serial), else to the hardware
    /// concurrency (on a single-core host that means no workers: all work
    /// runs inline).  An explicit nonzero `threads` always wins.
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /// Enqueues a task for asynchronous execution.  On a worker-less pool
    /// the task runs inline, so its exceptions propagate to the caller
    /// synchronously.  An exception escaping a queued task does not kill
    /// the worker (or the process): the first one is captured and rethrown
    /// by the next `wait()`.
    ///
    /// With a `cancel` token, a task still queued when the token trips is
    /// skipped at pop time (never run), so `wait()` drains promptly after
    /// a mid-batch cancellation instead of grinding through the backlog.
    /// Tasks already running always finish; exceptions captured before the
    /// trip are still rethrown by `wait()`.
    void submit(std::function<void()> task, const CancellationToken* cancel = nullptr);

    /// Blocks until every submitted task has finished (queue drained, no
    /// task running), then rethrows the first exception captured from a
    /// queued task since the last `wait()`, if any.
    void wait();

    /// Runs `body(i)` for every i in [0, n), distributing iterations over
    /// the workers plus the calling thread; returns when all are done.
    /// Iterations must be independent.  Exceptions thrown by `body`
    /// propagate to the caller (the first one encountered); once a body
    /// throws, not-yet-started iterations are abandoned.
    /// `maxThreads` caps the number of threads working on this loop
    /// (0 = no cap beyond the pool size).
    ///
    /// With a `cancel` token, not-yet-claimed iterations are abandoned once
    /// the token trips (claimed ones always run to completion — callers
    /// rely on never observing a half-executed iteration).  If any
    /// iteration was skipped this throws OperationCancelled; a body
    /// exception takes precedence over the cancellation report.
    void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                     std::size_t maxThreads = 0, const CancellationToken* cancel = nullptr);

    /// Process-wide pool, lazily constructed at hardware concurrency.
    static ThreadPool& global();

    /// True when the calling thread is a worker of any ThreadPool.
    static bool inWorkerThread();

private:
    struct QueuedTask {
        std::function<void()> fn;
        const CancellationToken* cancel = nullptr;  ///< skip at pop when tripped
        obs::TaskContext ctx;  ///< submitter's span, re-opened on the worker
    };

    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<QueuedTask> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;          ///< signalled when the pool drains
    std::size_t activeTasks_ = 0;           ///< queued tasks currently running
    std::exception_ptr pendingError_;       ///< first escape from a queued task
    bool stopping_ = false;
};

}  // namespace axf::util
