#include "src/util/cancellation.hpp"

#include <csignal>

namespace axf::util {

namespace {

CancellationToken g_signalToken;

#if !defined(_WIN32)
void onSignal(int) {
    // Async-signal-safe: one lock-free atomic store.  Restore the default
    // disposition so a second signal kills a shutdown that got stuck.
    g_signalToken.requestStop();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}
#else
void onSignal(int) { g_signalToken.requestStop(); }
#endif

}  // namespace

CancellationToken& signalToken() {
    static const bool installed = [] {
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        return true;
    }();
    (void)installed;
    return g_signalToken;
}

}  // namespace axf::util
