#pragma once

#include <span>
#include <vector>

namespace axf::util {

/// Descriptive statistics and correlation measures used when reporting
/// estimator quality (Fig. 6 of the paper) and when summarizing libraries.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  ///< population variance
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);        ///< by value: sorts a copy
double percentile(std::vector<double> xs, double p);  ///< p in [0,100]
double minOf(std::span<const double> xs);
double maxOf(std::span<const double> xs);

/// Pearson linear correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Fractional ranks (1-based, ties averaged), as used by `spearman`.
std::vector<double> ranks(std::span<const double> xs);

/// Ordinary least squares y = a + b*x; returns {a, b}.
struct LinearFit {
    double intercept = 0.0;
    double slope = 0.0;
};
LinearFit fitLine(std::span<const double> xs, std::span<const double> ys);

/// Mean absolute percentage error of estimates vs. measurements, in percent.
/// Pairs whose measured value is zero are skipped.
double mape(std::span<const double> measured, std::span<const double> estimated);

/// Mean signed relative bias of estimates, in percent (negative means the
/// estimator under-predicts, the failure mode the paper reports for latency).
double relativeBias(std::span<const double> measured, std::span<const double> estimated);

}  // namespace axf::util
