#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace axf::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::addRow(std::vector<std::string> cells) {
    if (cells.size() != header_.size())
        throw std::invalid_argument("Table::addRow: cell count mismatch");
    rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string Table::integer(long long value) { return std::to_string(value); }

std::string Table::percent(double fraction, int precision) {
    return num(100.0 * fraction, precision) + "%";
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    const auto printRow = [&](const std::vector<std::string>& row) {
        os << "| ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
            os << (c + 1 == row.size() ? " |" : " | ");
        }
        os << '\n';
    };

    printRow(header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << std::string(width[c] + 2, '-') << "|";
    }
    os << '\n';
    for (const auto& row : rows_) printRow(row);
}

namespace {
std::string csvEscape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}
}  // namespace

void Table::writeCsv(std::ostream& os) const {
    const auto writeRow = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << csvEscape(row[c]);
            if (c + 1 != row.size()) os << ',';
        }
        os << '\n';
    };
    writeRow(header_);
    for (const auto& row : rows_) writeRow(row);
}

void printBanner(std::ostream& os, const std::string& title) {
    os << '\n' << std::string(72, '=') << '\n'
       << "  " << title << '\n'
       << std::string(72, '=') << '\n';
}

}  // namespace axf::util
