#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace axf::util {

/// Stall detector for long-running campaigns.  Workers call `pulse()` at
/// their progress points (epoch boundaries, chunk completions); a monitor
/// thread logs to stderr when no pulse arrives within the deadline, then
/// again at each further deadline multiple.  Purely observational — it
/// never kills anything; pair it with a CancellationToken when a stalled
/// run should also be stopped.
///
/// A deadline of 0 disables the watchdog entirely (no monitor thread), so
/// call sites can construct one unconditionally from the env knob.
class Watchdog {
public:
    struct Options {
        double deadlineSeconds = 0;  ///< 0 → disabled
        std::string label = "campaign";
    };

    explicit Watchdog(Options options);
    ~Watchdog();

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Record liveness.  Cheap and thread-safe: any worker may pulse.
    void pulse() noexcept;

    bool enabled() const noexcept { return monitor_.joinable(); }

    /// Number of stall reports logged so far (tests observe this).
    int stallsLogged() const noexcept { return stalls_.load(std::memory_order_relaxed); }

    /// Full text of the most recent stall report (header line plus the
    /// per-thread span paths from obs::stallReport); empty before the
    /// first stall.  Tests assert on this instead of scraping stderr.
    std::string lastStallReport() const;

private:
    using Clock = std::chrono::steady_clock;

    void monitorLoop(double deadlineSeconds);

    Options options_;
    std::atomic<Clock::duration::rep> lastPulse_{0};
    std::atomic<int> stalls_{0};
    mutable std::mutex reportMutex_;
    std::string lastReport_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::thread monitor_;
};

/// Deadline from `AXF_WATCHDOG_SECONDS` (unset, empty, or unparsable → 0,
/// i.e. disabled) — the knob the fig benches and axf-campaign arm with.
double watchdogDeadlineFromEnv();

}  // namespace axf::util
