#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace axf::util {

/// Aligned console table used by the bench harnesses to print the rows and
/// series the paper's tables/figures report.  Also serializes to CSV so
/// results can be post-processed or plotted externally.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append one row; must match the header width.
    void addRow(std::vector<std::string> cells);

    /// Convenience: formats doubles with the given precision.
    static std::string num(double value, int precision = 3);
    static std::string integer(long long value);
    static std::string percent(double fraction, int precision = 1);  ///< 0.71 -> "71.0%"

    void print(std::ostream& os) const;
    void writeCsv(std::ostream& os) const;

    std::size_t rowCount() const { return rows_.size(); }
    std::size_t columnCount() const { return header_.size(); }
    const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Section banner used between experiment phases in bench output.
void printBanner(std::ostream& os, const std::string& title);

}  // namespace axf::util
