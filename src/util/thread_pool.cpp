#include "src/util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "src/obs/metrics.hpp"

namespace axf::util {

namespace {
thread_local bool tlsInWorker = false;

// Pool counters live on the global registry (resolved once; recording is
// one striped relaxed add, or a single branch when metrics are off).
obs::Counter& tasksRunCounter() {
    static obs::Counter& c = obs::Registry::global().counter("threadpool.tasks_run");
    return c;
}
obs::Counter& tasksSkippedCounter() {
    static obs::Counter& c = obs::Registry::global().counter("threadpool.tasks_skipped");
    return c;
}

/// AXF_THREADS pins the default pool sizing (benches, CI and fleet runs
/// want a reproducible worker count); values <= 1 mean fully serial.
/// Invalid or unset values fall back to the hardware concurrency.
unsigned defaultThreadCount() {
    if (const char* env = std::getenv("AXF_THREADS"); env != nullptr && *env != '\0') {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != nullptr && *end == '\0' && parsed <= 4096)
            return parsed <= 1 ? 0 : static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw <= 1 ? 0 : hw;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) {
        // Auto-size (AXF_THREADS override, else hardware concurrency): on
        // a single-core host spawn no workers at all — parallelFor
        // degrades to an inline loop and submit runs inline, instead of
        // two threads contending for one core.
        threads = defaultThreadCount();
    }
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
    tlsInWorker = true;
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++activeTasks_;
        }
        // A task that throws must not unwind the worker thread (that would
        // std::terminate the process): capture the first escape for the
        // next wait() to rethrow.
        std::exception_ptr error;
        try {
            // A cancelled task still queued is dropped here unrun — this is
            // what lets wait() drain promptly when a token trips mid-batch.
            if (!(task.cancel && task.cancel->stopRequested())) {
                // Re-open the submitter's span on this worker so traces and
                // stall reports show which phase the task belongs to.
                obs::ScopedTaskContext ctx(task.ctx);
                tasksRunCounter().add();
                task.fn();
            } else {
                tasksSkippedCounter().add();
            }
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !pendingError_) pendingError_ = std::move(error);
            --activeTasks_;
            if (queue_.empty() && activeTasks_ == 0) idle_.notify_all();
        }
    }
}

void ThreadPool::submit(std::function<void()> task, const CancellationToken* cancel) {
    if (workers_.empty()) {  // worker-less pool: run synchronously
        if (!(cancel && cancel->stopRequested())) {
            tasksRunCounter().add();
            task();
        } else {
            tasksSkippedCounter().add();
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(QueuedTask{std::move(task), cancel, obs::currentContext()});
    }
    wake_.notify_one();
}

void ThreadPool::wait() {
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return queue_.empty() && activeTasks_ == 0; });
        error = std::exchange(pendingError_, nullptr);
    }
    if (error) std::rethrow_exception(error);
}

void ThreadPool::parallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                             std::size_t maxThreads, const CancellationToken* cancel) {
    if (n == 0) return;
    // Inline when small, when the pool has no extra workers, when capped
    // to one thread, or when already running on a worker (nested call):
    // the outer level owns the parallelism and recursion into the queue
    // could deadlock.
    if (n == 1 || workers_.empty() || maxThreads == 1 || inWorkerThread()) {
        for (std::size_t i = 0; i < n; ++i) {
            if (cancel && cancel->stopRequested()) throw OperationCancelled();
            body(i);
        }
        return;
    }

    struct Shared {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> inflight{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;
        std::mutex doneMutex;
        std::condition_variable done;
    };
    auto shared = std::make_shared<Shared>();

    // The caller waits for *iteration* completion (inflight == 0 after its
    // own drain exhausted the index space), never for the helper tasks
    // themselves: queued helpers may sit behind unrelated long-running
    // pool work, and a nested parallelFor must not stall on it.  A helper
    // that starts late claims no index and touches nothing but `shared`
    // (kept alive by its closure), so returning early is safe.
    const auto drain = [shared, &body, n, cancel] {
        for (;;) {
            // inflight brackets the claim itself so the caller can never
            // observe "all indices claimed" while a body is still running.
            shared->inflight.fetch_add(1, std::memory_order_acq_rel);
            std::size_t i = n;
            // Abandon not-yet-claimed iterations once any body threw (a
            // long loop should not grind on for minutes before reporting)
            // or once cancellation was requested — same mechanism, distinct
            // report below.
            if (!shared->failed.load(std::memory_order_acquire) &&
                !(cancel && cancel->stopRequested()))
                i = shared->next.fetch_add(1, std::memory_order_relaxed);
            const bool run = i < n;
            if (run) {
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(shared->errorMutex);
                    if (!shared->error) shared->error = std::current_exception();
                    shared->failed.store(true, std::memory_order_release);
                }
            }
            if (shared->inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(shared->doneMutex);
                shared->done.notify_all();
            }
            if (!run) return;
        }
    };

    std::size_t helpers = std::min(workers_.size(), n - 1);
    if (maxThreads != 0) helpers = std::min(helpers, maxThreads - 1);
    // Helpers carry the token so ones still queued when it trips are
    // dropped at pop time instead of waking up just to claim nothing.
    for (std::size_t h = 0; h < helpers; ++h) submit(drain, cancel);
    drain();  // the calling thread works too; exits only once next >= n or failed
    {
        std::unique_lock<std::mutex> lock(shared->doneMutex);
        shared->done.wait(lock, [&] {
            return shared->inflight.load(std::memory_order_acquire) == 0;
        });
    }
    if (shared->error) std::rethrow_exception(shared->error);
    // Report cancellation only when it actually cost us iterations: a token
    // that trips after the last claim changes nothing, and callers want
    // "completed normally" in that case.
    if (cancel && cancel->stopRequested() && shared->next.load(std::memory_order_acquire) < n)
        throw OperationCancelled();
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

bool ThreadPool::inWorkerThread() { return tlsInWorker; }

}  // namespace axf::util
