#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace axf::util {

/// Append-only little-endian binary encoder used by the characterization
/// cache payloads.  Fixed field order and explicit widths keep shard files
/// portable across hosts; no framing — the consumer knows the layout.
class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u16(std::uint16_t v) {
        for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /// Doubles travel as their IEEE-754 bit pattern: serialization must be
    /// bit-exact, not round-trip-through-text exact.
    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void raw(const void* data, std::size_t n) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    const std::vector<std::uint8_t>& bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked decoder over a byte span.  Every accessor reports success;
/// after the first failed read the reader stays failed (`ok()` == false), so
/// a decode routine can read all fields and check once at the end.
class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data)
        : p_(data.data()), end_(data.data() + data.size()) {}

    bool u8(std::uint8_t& v) {
        if (!take(1)) return false;
        v = p_[-1];
        return true;
    }

    bool u16(std::uint16_t& v) {
        if (!take(2)) return false;
        v = static_cast<std::uint16_t>(p_[-2] | (p_[-1] << 8));
        return true;
    }

    bool u32(std::uint32_t& v) {
        if (!take(4)) return false;
        v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i - 4]) << (8 * i);
        return true;
    }

    bool u64(std::uint64_t& v) {
        if (!take(8)) return false;
        v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i - 8]) << (8 * i);
        return true;
    }

    bool f64(double& v) {
        std::uint64_t bits;
        if (!u64(bits)) return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    bool boolean(bool& v) {
        std::uint8_t byte;
        if (!u8(byte)) return false;
        v = byte != 0;
        return true;
    }

    bool raw(void* out, std::size_t n) {
        if (!take(n)) return false;
        std::memcpy(out, p_ - n, n);
        return true;
    }

    bool ok() const { return ok_; }
    std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

private:
    bool take(std::size_t n) {
        if (!ok_ || remaining() < n) {
            ok_ = false;
            return false;
        }
        p_ += n;
        return true;
    }

    const std::uint8_t* p_;
    const std::uint8_t* end_;
    bool ok_ = true;
};

}  // namespace axf::util
