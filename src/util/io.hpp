#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace axf::util {

struct AtomicWriteOptions {
    int retries = 3;          ///< attempts beyond the first on transient failure
    int backoffMs = 10;       ///< initial backoff; doubles per retry
    bool syncFile = true;     ///< fsync the temp file before rename
    bool syncDirectory = true;///< fsync the parent directory after rename
};

struct AtomicWriteResult {
    bool ok = false;
    int attempts = 0;         ///< total attempts made (>= 1 when any I/O was tried)

    explicit operator bool() const { return ok; }
};

/// Durably replace `path` with `bytes`: write to a same-directory temp file,
/// fsync it, atomically rename over the destination, then fsync the parent
/// directory so the rename itself survives a crash.  Readers therefore see
/// either the complete old file or the complete new file, never a torn mix —
/// the invariant the cache shards and search checkpoints are built on.
///
/// Transient failures (ENOSPC clearing, NFS hiccups, AV interference) are
/// retried with exponential backoff up to `options.retries` extra attempts;
/// the temp file is always unlinked on failure.
AtomicWriteResult atomicWriteFile(const std::string& path, const void* data, std::size_t size,
                                  const AtomicWriteOptions& options = {});

AtomicWriteResult atomicWriteFile(const std::string& path, const std::vector<unsigned char>& bytes,
                                  const AtomicWriteOptions& options = {});

/// Whole-file read; nullopt when the file is missing or unreadable.
std::optional<std::vector<unsigned char>> readFileBytes(const std::string& path);

}  // namespace axf::util
