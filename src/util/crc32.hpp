#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace axf::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the durability
/// checksum of on-disk artifacts (cache shard entries, search checkpoints).
/// Chosen over the in-memory FNV digests because single-bit and short-burst
/// errors — the realistic storage corruption classes — are guaranteed
/// detected, and because the value is stable, documented and reproducible
/// by any external tool auditing the files.
namespace detail {
constexpr std::array<std::uint32_t, 256> makeCrc32Table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = makeCrc32Table();
}  // namespace detail

/// One-shot CRC-32 of a byte range.  For incremental use, pass the previous
/// return value as `seed` (the pre/post conditioning composes correctly).
constexpr std::uint32_t crc32(const unsigned char* p, std::size_t n, std::uint32_t seed = 0) {
    std::uint32_t c = ~seed;
    for (std::size_t i = 0; i < n; ++i)
        c = detail::kCrc32Table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return ~c;
}

/// void* convenience (runtime only: void* casts are not constexpr-legal).
inline std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0) {
    return crc32(static_cast<const unsigned char*>(data), n, seed);
}

namespace detail {
constexpr std::uint32_t crc32Check() {
    constexpr char digits[] = "123456789";
    unsigned char bytes[9] = {};
    for (int i = 0; i < 9; ++i) bytes[i] = static_cast<unsigned char>(digits[i]);
    return crc32(bytes, 9);
}
static_assert(crc32Check() == 0xCBF43926u, "CRC-32 check value (IEEE)");
}  // namespace detail

}  // namespace axf::util
