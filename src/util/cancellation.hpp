#pragma once

#include <atomic>
#include <stdexcept>

namespace axf::util {

/// Thrown by a cooperatively-cancelled computation once it has reached a
/// safe abandonment point (long-running engines flush a checkpoint first —
/// see src/durable).  A distinct type so callers can tell "the user asked
/// us to stop" from a real failure: benches and tools catch it at
/// top-level and exit with `kCancelledExitCode`.
class OperationCancelled : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
    OperationCancelled() : std::runtime_error("operation cancelled") {}
};

/// Process exit status of a run that stopped on request (SIGINT/SIGTERM)
/// after flushing its durable state — deliberately distinct from 0
/// (success), 1 (findings/failure) and 2 (usage), so supervisors and the
/// CI interrupt job can assert the clean-cancellation path was taken.
inline constexpr int kCancelledExitCode = 75;

/// Cooperative cancellation flag shared between a requester (signal
/// handler, supervisor thread, test) and any number of workers.  Workers
/// poll `stopRequested()` at their natural abandonment points — epoch
/// boundaries, chunk claims, batch edges — finish or abandon the unit in
/// flight, persist what the contract requires, and throw
/// `OperationCancelled`.
///
/// The flag is a single lock-free atomic: `requestStop` is async-signal-
/// safe (the SIGINT/SIGTERM handlers call it directly) and polling it on
/// a hot path costs one relaxed-ish load.  Cancellation is one-way — a
/// token never resets; run-scoped state wants a fresh token per run.
class CancellationToken {
public:
    CancellationToken() = default;
    CancellationToken(const CancellationToken&) = delete;
    CancellationToken& operator=(const CancellationToken&) = delete;

    void requestStop() noexcept { stop_.store(true, std::memory_order_release); }
    bool stopRequested() const noexcept { return stop_.load(std::memory_order_acquire); }

    /// Poll-and-throw convenience for code with nothing to flush.
    void throwIfStopRequested() const {
        if (stopRequested()) throw OperationCancelled();
    }

private:
    std::atomic<bool> stop_{false};
    static_assert(std::atomic<bool>::is_always_lock_free,
                  "signal handlers require a lock-free stop flag");
};

/// Process-global token tripped by SIGINT/SIGTERM.  The first call
/// installs the handlers (idempotent, not thread-safe against concurrent
/// first calls — wire it up from main before spawning work); subsequent
/// calls return the same token.  The handler only sets the flag: the
/// process exits through the normal unwind path (checkpoint flush, cache
/// flush, destructors), not from inside the handler.  A second signal
/// while stopping falls through to the default disposition, so a stuck
/// shutdown can still be killed interactively.
CancellationToken& signalToken();

}  // namespace axf::util
