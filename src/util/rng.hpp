#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/bytes.hpp"

namespace axf::util {

/// One splitmix64 step: advances `state` and returns a well-mixed 64-bit
/// value.  Iterating from a base seed yields a reproducible sequence of
/// decorrelated seeds without constructing intermediate generators — the
/// island search derives its per-island RNG streams this way.  (The
/// activity-stimulus and digest paths in circuit/error/cache keep private
/// copies of the same constants to stay header-dependency-free; keep the
/// algorithms in sync.)
inline std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/// Deterministic pseudo-random number generator used by every stochastic
/// component in the library (CGP mutation, data-set sampling, ML
/// initialization, placement jitter).  All call-sites receive an explicit
/// seed so that experiments reproduce bit-identically.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform integer in the closed interval [lo, hi].
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi) {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
    }

    /// Uniform index in [0, size).  `size` must be positive.
    std::size_t index(std::size_t size) {
        if (size == 0) throw std::invalid_argument("Rng::index: empty range");
        return static_cast<std::size_t>(uniformInt(0, size - 1));
    }

    /// Uniform real in the half-open interval [lo, hi).
    double uniformReal(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Standard normal variate scaled to the given mean / stddev.
    double gaussian(double mean = 0.0, double stddev = 1.0) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Bernoulli trial with success probability `p`.
    bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

    /// Uniformly chosen element of a non-empty span.
    template <typename T>
    const T& pick(std::span<const T> items) {
        return items[index(items.size())];
    }

    template <typename T>
    void shuffle(std::vector<T>& items) {
        std::shuffle(items.begin(), items.end(), engine_);
    }

    /// Sample `k` distinct indices from [0, n) (Fisher-Yates prefix).
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k) {
        if (k > n) throw std::invalid_argument("Rng::sampleIndices: k > n");
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i) idx[i] = i;
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t j = i + index(n - i);
            std::swap(idx[i], idx[j]);
        }
        idx.resize(k);
        return idx;
    }

    /// Derive an independent child generator (e.g. per-worker streams).
    Rng fork() { return Rng(uniformInt(0, UINT64_MAX)); }

    /// Snapshot the full generator state (search checkpoints).  All
    /// distributions above are constructed per call, so the engine state is
    /// the complete state: a deserialized Rng continues the exact sequence.
    /// Encoded as the engine's standard text form, length-prefixed — the
    /// representation the C++ standard guarantees round-trips.
    void serialize(ByteWriter& out) const {
        std::ostringstream text;
        text << engine_;
        const std::string state = text.str();
        out.u32(static_cast<std::uint32_t>(state.size()));
        out.raw(state.data(), state.size());
    }

    /// Restore a generator serialized above; false (reader failed or state
    /// malformed) leaves `rng` unspecified.
    static bool deserialize(ByteReader& in, Rng& rng) {
        std::uint32_t size = 0;
        if (!in.u32(size) || size == 0 || size > kMaxSerializedState) return false;
        std::string state(size, '\0');
        if (!in.raw(state.data(), state.size())) return false;
        std::istringstream text(state);
        text >> rng.engine_;
        return !text.fail();
    }

    friend bool operator==(const Rng& a, const Rng& b) { return a.engine_ == b.engine_; }

    std::mt19937_64& engine() { return engine_; }

private:
    /// mt19937_64 text state is 312 19-to-20-digit words plus a position —
    /// ~7 KB; anything past 64 KB is a corrupt length field, not a state.
    static constexpr std::uint32_t kMaxSerializedState = 1u << 16;

    std::mt19937_64 engine_;
};

}  // namespace axf::util
