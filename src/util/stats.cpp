#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace axf::util {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) return 0.0;
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
    std::sort(xs.begin(), xs.end());
    const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double minOf(std::span<const double> xs) {
    return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double maxOf(std::span<const double> xs) {
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
    if (xs.size() < 2) return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> xs) {
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    std::vector<double> rank(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
        // Average 1-based rank over the tie group [i, j].
        const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg;
        i = j + 1;
    }
    return rank;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) throw std::invalid_argument("spearman: size mismatch");
    const std::vector<double> rx = ranks(xs);
    const std::vector<double> ry = ranks(ys);
    return pearson(rx, ry);
}

LinearFit fitLine(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) throw std::invalid_argument("fitLine: size mismatch");
    LinearFit fit;
    if (xs.size() < 2) {
        fit.intercept = ys.empty() ? 0.0 : ys[0];
        return fit;
    }
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    return fit;
}

double mape(std::span<const double> measured, std::span<const double> estimated) {
    if (measured.size() != estimated.size()) throw std::invalid_argument("mape: size mismatch");
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] == 0.0) continue;
        acc += std::abs((estimated[i] - measured[i]) / measured[i]);
        ++n;
    }
    return n == 0 ? 0.0 : 100.0 * acc / static_cast<double>(n);
}

double relativeBias(std::span<const double> measured, std::span<const double> estimated) {
    if (measured.size() != estimated.size())
        throw std::invalid_argument("relativeBias: size mismatch");
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] == 0.0) continue;
        acc += (estimated[i] - measured[i]) / measured[i];
        ++n;
    }
    return n == 0 ? 0.0 : 100.0 * acc / static_cast<double>(n);
}

}  // namespace axf::util
