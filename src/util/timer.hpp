#pragma once

#include <chrono>

namespace axf::util {

/// Wall-clock stopwatch for the exploration-time accounting in Fig. 3.
class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }
    double milliseconds() const { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace axf::util
