#include "src/util/io.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace axf::util {

namespace {

/// Same-directory temp name, unique per process and per call so concurrent
/// writers (shard flushes from different threads/processes) never collide.
std::string tempPathFor(const std::string& path) {
    static std::atomic<unsigned> counter{0};
#if defined(_WIN32)
    const unsigned long pid = 0;
#else
    const unsigned long pid = static_cast<unsigned long>(::getpid());
#endif
    return path + ".tmp." + std::to_string(pid) + "." +
           std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

#if !defined(_WIN32)
bool writeAllFd(int fd, const unsigned char* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool syncPath(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}
#endif

/// One write attempt: temp file -> (fsync) -> rename -> (dir fsync).
bool tryWriteOnce(const std::string& path, const void* data, std::size_t size,
                  const AtomicWriteOptions& options) {
    const std::string tmp = tempPathFor(path);
#if defined(_WIN32)
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
#else
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    if (!writeAllFd(fd, static_cast<const unsigned char*>(data), size) ||
        (options.syncFile && ::fsync(fd) != 0)) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    if (options.syncDirectory) {
        const std::string dir = std::filesystem::path(path).parent_path().string();
        syncPath(dir.empty() ? "." : dir);  // best-effort: data already renamed in
    }
    return true;
#endif
}

}  // namespace

AtomicWriteResult atomicWriteFile(const std::string& path, const void* data, std::size_t size,
                                  const AtomicWriteOptions& options) {
    AtomicWriteResult result;
    int backoff = options.backoffMs;
    const int attempts = 1 + (options.retries > 0 ? options.retries : 0);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        ++result.attempts;
        if (tryWriteOnce(path, data, size, options)) {
            result.ok = true;
            return result;
        }
        if (attempt + 1 < attempts && backoff > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
            backoff *= 2;
        }
    }
    return result;
}

AtomicWriteResult atomicWriteFile(const std::string& path, const std::vector<unsigned char>& bytes,
                                  const AtomicWriteOptions& options) {
    return atomicWriteFile(path, bytes.data(), bytes.size(), options);
}

std::optional<std::vector<unsigned char>> readFileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return std::nullopt;
    const std::streamsize size = in.tellg();
    if (size < 0) return std::nullopt;
    std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
    in.seekg(0);
    if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) return std::nullopt;
    return bytes;
}

}  // namespace axf::util
