#include "src/util/watchdog.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/obs/trace.hpp"

namespace axf::util {

Watchdog::Watchdog(Options options) : options_(std::move(options)) {
    lastPulse_.store(Clock::now().time_since_epoch().count(), std::memory_order_relaxed);
    if (options_.deadlineSeconds > 0)
        monitor_ = std::thread([this, d = options_.deadlineSeconds] { monitorLoop(d); });
}

Watchdog::~Watchdog() {
    if (!monitor_.joinable()) return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    monitor_.join();
}

void Watchdog::pulse() noexcept {
    lastPulse_.store(Clock::now().time_since_epoch().count(), std::memory_order_relaxed);
}

void Watchdog::monitorLoop(double deadlineSeconds) {
    const auto deadline = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(deadlineSeconds));
    // Poll at a fraction of the deadline so a stall is reported within
    // ~1.25× the configured time without burning cycles on tight loops.
    const auto interval = deadline / 4 + std::chrono::milliseconds(1);
    bool stalled = false;
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        cv_.wait_for(lock, interval, [this] { return stopping_; });
        if (stopping_) break;
        const auto last = Clock::duration(lastPulse_.load(std::memory_order_relaxed));
        const auto silent = Clock::now().time_since_epoch() - last;
        if (silent >= deadline) {
            if (!stalled) {
                const double secs = std::chrono::duration<double>(silent).count();
                char header[256];
                std::snprintf(header, sizeof header,
                              "[axf watchdog] %s: no progress for %.1fs (deadline %.1fs)\n",
                              options_.label.c_str(), secs, deadlineSeconds);
                // Name the stuck work: every live thread's active span path
                // ("thread 3 in search_epoch > eval_batch"), read race-free
                // from the obs span stacks.
                std::string report = header;
                report += obs::stallReport();
                std::fputs(report.c_str(), stderr);
                std::fflush(stderr);
                {
                    std::lock_guard<std::mutex> reportLock(reportMutex_);
                    lastReport_ = std::move(report);
                }
                stalls_.fetch_add(1, std::memory_order_relaxed);
                stalled = true;  // report once per stall, re-arm on next pulse
            }
        } else {
            stalled = false;
        }
    }
}

std::string Watchdog::lastStallReport() const {
    std::lock_guard<std::mutex> lock(reportMutex_);
    return lastReport_;
}

double watchdogDeadlineFromEnv() {
    const char* raw = std::getenv("AXF_WATCHDOG_SECONDS");
    if (!raw || !*raw) return 0;
    char* end = nullptr;
    const double value = std::strtod(raw, &end);
    if (end == raw || value <= 0) return 0;
    return value;
}

}  // namespace axf::util
