#include "src/img/ssim.hpp"

#include <stdexcept>
#include <vector>

namespace axf::img {

namespace {

/// Window start coordinates along one dimension: the stride-4 sweep plus a
/// clamped tail window so the right/bottom border is always scored even
/// when `(dim - window) % stride != 0`.  On aligned dimensions the tail
/// coincides with the last stride position and nothing is added, keeping
/// historical scores unchanged there.
std::vector<int> windowStarts(int dim, int window, int stride) {
    std::vector<int> starts;
    for (int v = 0; v + window <= dim; v += stride) starts.push_back(v);
    if (starts.back() + window < dim) starts.push_back(dim - window);
    return starts;
}

}  // namespace

double ssim(const Image& reference, const Image& distorted) {
    if (reference.width() != distorted.width() || reference.height() != distorted.height())
        throw std::invalid_argument("ssim: image dimensions differ");
    constexpr int kWindow = 8;
    constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
    constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
    const int w = reference.width();
    const int h = reference.height();
    if (w < kWindow || h < kWindow) throw std::invalid_argument("ssim: image too small");

    double total = 0.0;
    std::size_t windows = 0;
    constexpr int kStride = 4;  // half-overlapping windows
    const std::vector<int> ys = windowStarts(h, kWindow, kStride);
    const std::vector<int> xs = windowStarts(w, kWindow, kStride);
    for (const int y0 : ys) {
        for (const int x0 : xs) {
            double sumA = 0, sumB = 0, sumAA = 0, sumBB = 0, sumAB = 0;
            for (int y = y0; y < y0 + kWindow; ++y) {
                for (int x = x0; x < x0 + kWindow; ++x) {
                    const double a = reference.at(x, y);
                    const double b = distorted.at(x, y);
                    sumA += a;
                    sumB += b;
                    sumAA += a * a;
                    sumBB += b * b;
                    sumAB += a * b;
                }
            }
            constexpr double n = kWindow * kWindow;
            const double muA = sumA / n;
            const double muB = sumB / n;
            const double varA = sumAA / n - muA * muA;
            const double varB = sumBB / n - muB * muB;
            const double cov = sumAB / n - muA * muB;
            const double value = ((2.0 * muA * muB + kC1) * (2.0 * cov + kC2)) /
                                 ((muA * muA + muB * muB + kC1) * (varA + varB + kC2));
            total += value;
            ++windows;
        }
    }
    return windows == 0 ? 1.0 : total / static_cast<double>(windows);
}

}  // namespace axf::img
