#include "src/img/ssim.hpp"

#include <stdexcept>

namespace axf::img {

double ssim(const Image& reference, const Image& distorted) {
    if (reference.width() != distorted.width() || reference.height() != distorted.height())
        throw std::invalid_argument("ssim: image dimensions differ");
    constexpr int kWindow = 8;
    constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
    constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
    const int w = reference.width();
    const int h = reference.height();
    if (w < kWindow || h < kWindow) throw std::invalid_argument("ssim: image too small");

    double total = 0.0;
    std::size_t windows = 0;
    constexpr int kStride = 4;  // half-overlapping windows
    for (int y0 = 0; y0 + kWindow <= h; y0 += kStride) {
        for (int x0 = 0; x0 + kWindow <= w; x0 += kStride) {
            double sumA = 0, sumB = 0, sumAA = 0, sumBB = 0, sumAB = 0;
            for (int y = y0; y < y0 + kWindow; ++y) {
                for (int x = x0; x < x0 + kWindow; ++x) {
                    const double a = reference.at(x, y);
                    const double b = distorted.at(x, y);
                    sumA += a;
                    sumB += b;
                    sumAA += a * a;
                    sumBB += b * b;
                    sumAB += a * b;
                }
            }
            constexpr double n = kWindow * kWindow;
            const double muA = sumA / n;
            const double muB = sumB / n;
            const double varA = sumAA / n - muA * muA;
            const double varB = sumBB / n - muB * muB;
            const double cov = sumAB / n - muA * muB;
            const double value = ((2.0 * muA * muB + kC1) * (2.0 * cov + kC2)) /
                                 ((muA * muA + muB * muB + kC1) * (varA + varB + kC2));
            total += value;
            ++windows;
        }
    }
    return windows == 0 ? 1.0 : total / static_cast<double>(windows);
}

}  // namespace axf::img
