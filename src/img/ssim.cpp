#include "src/img/ssim.hpp"

#include <stdexcept>
#include <vector>

namespace axf::img {

namespace {

constexpr int kWindow = 8;
constexpr int kStride = 4;  // half-overlapping windows
constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);

/// Window start coordinates along one dimension: the stride-4 sweep plus a
/// clamped tail window so the right/bottom border is always scored even
/// when `(dim - window) % stride != 0`.  On aligned dimensions the tail
/// coincides with the last stride position and nothing is added, keeping
/// historical scores unchanged there.
std::vector<int> windowStarts(int dim, int window, int stride) {
    std::vector<int> starts;
    for (int v = 0; v + window <= dim; v += stride) starts.push_back(v);
    if (starts.back() + window < dim) starts.push_back(dim - window);
    return starts;
}

}  // namespace

SsimReference::SsimReference(const Image& reference)
    : width_(reference.width()), height_(reference.height()), pixels_(reference.pixels()) {
    if (width_ < kWindow || height_ < kWindow)
        throw std::invalid_argument("ssim: image too small");
    ys_ = windowStarts(height_, kWindow, kStride);
    xs_ = windowStarts(width_, kWindow, kStride);
    stats_.reserve(ys_.size() * xs_.size());
    for (const int y0 : ys_) {
        for (const int x0 : xs_) {
            WindowStat s;
            for (int y = y0; y < y0 + kWindow; ++y) {
                for (int x = x0; x < x0 + kWindow; ++x) {
                    const double a = reference.at(x, y);
                    s.sumA += a;
                    s.sumAA += a * a;
                }
            }
            stats_.push_back(s);
        }
    }
}

double SsimReference::compare(const Image& distorted) const {
    if (width_ != distorted.width() || height_ != distorted.height())
        throw std::invalid_argument("ssim: image dimensions differ");
    double total = 0.0;
    std::size_t windows = 0;
    const std::uint8_t* ref = pixels_.data();
    for (std::size_t yi = 0; yi < ys_.size(); ++yi) {
        const int y0 = ys_[yi];
        for (std::size_t xi = 0; xi < xs_.size(); ++xi) {
            const int x0 = xs_[xi];
            const WindowStat& s = stats_[yi * xs_.size() + xi];
            double sumB = 0, sumBB = 0, sumAB = 0;
            for (int y = y0; y < y0 + kWindow; ++y) {
                const std::size_t row =
                    static_cast<std::size_t>(y) * static_cast<std::size_t>(width_);
                for (int x = x0; x < x0 + kWindow; ++x) {
                    const double a = ref[row + static_cast<std::size_t>(x)];
                    const double b = distorted.at(x, y);
                    sumB += b;
                    sumBB += b * b;
                    sumAB += a * b;
                }
            }
            constexpr double n = kWindow * kWindow;
            const double muA = s.sumA / n;
            const double muB = sumB / n;
            const double varA = s.sumAA / n - muA * muA;
            const double varB = sumBB / n - muB * muB;
            const double cov = sumAB / n - muA * muB;
            const double value = ((2.0 * muA * muB + kC1) * (2.0 * cov + kC2)) /
                                 ((muA * muA + muB * muB + kC1) * (varA + varB + kC2));
            total += value;
            ++windows;
        }
    }
    return windows == 0 ? 1.0 : total / static_cast<double>(windows);
}

double ssim(const Image& reference, const Image& distorted) {
    return SsimReference(reference).compare(distorted);
}

}  // namespace axf::img
