#pragma once

#include "src/img/image.hpp"

namespace axf::img {

/// Structural similarity index (Wang et al. 2004) — the QoR metric of the
/// paper's Gaussian-filter case study.  Mean SSIM over sliding 8x8 windows
/// with the standard stabilizers C1=(0.01*255)^2, C2=(0.03*255)^2.
/// Returns a value in [-1, 1]; 1 means identical.
double ssim(const Image& reference, const Image& distorted);

}  // namespace axf::img
