#pragma once

#include <vector>

#include "src/img/image.hpp"

namespace axf::img {

/// Structural similarity index (Wang et al. 2004) — the QoR metric of the
/// paper's Gaussian-filter case study.  Mean SSIM over sliding 8x8 windows
/// with the standard stabilizers C1=(0.01*255)^2, C2=(0.03*255)^2.
/// Returns a value in [-1, 1]; 1 means identical.
double ssim(const Image& reference, const Image& distorted);

/// Precomputed reference side of the SSIM sweep: window positions plus the
/// per-window sum / sum-of-squares of the reference image.  When one
/// reference is scored against many distorted candidates (the accelerator
/// evaluation engine compares every config against the same exact output),
/// holding an `SsimReference` per scene halves the window arithmetic and
/// skips re-walking the reference pixels entirely.
///
/// `compare` is bit-identical to `ssim(reference, distorted)` — same window
/// order, same accumulation order, same formula.
class SsimReference {
public:
    explicit SsimReference(const Image& reference);

    /// SSIM of `distorted` against the bound reference.
    double compare(const Image& distorted) const;

    int width() const { return width_; }
    int height() const { return height_; }

private:
    struct WindowStat {
        double sumA = 0.0;   ///< reference pixel sum over the window
        double sumAA = 0.0;  ///< reference pixel square sum
    };

    int width_ = 0;
    int height_ = 0;
    std::vector<int> xs_;  ///< window start columns (stride sweep + clamped tail)
    std::vector<int> ys_;  ///< window start rows
    std::vector<WindowStat> stats_;  ///< row-major over (ys_, xs_)
    std::vector<std::uint8_t> pixels_;  ///< reference copy for the cross term
};

}  // namespace axf::img
