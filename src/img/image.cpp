#include "src/img/image.hpp"

#include <algorithm>
#include <cmath>

namespace axf::img {

std::uint8_t Image::atClamped(int x, int y) const {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

namespace {

/// Bilinear value noise on a coarse lattice (Perlin-like texture term).
double valueNoise(const std::vector<double>& lattice, int cells, double u, double v) {
    const double gx = u * static_cast<double>(cells - 1);
    const double gy = v * static_cast<double>(cells - 1);
    const int x0 = static_cast<int>(gx);
    const int y0 = static_cast<int>(gy);
    const int x1 = std::min(x0 + 1, cells - 1);
    const int y1 = std::min(y0 + 1, cells - 1);
    const double fx = gx - x0;
    const double fy = gy - y0;
    const auto l = [&](int x, int y) {
        return lattice[static_cast<std::size_t>(y) * static_cast<std::size_t>(cells) +
                       static_cast<std::size_t>(x)];
    };
    const double top = l(x0, y0) * (1 - fx) + l(x1, y0) * fx;
    const double bot = l(x0, y1) * (1 - fx) + l(x1, y1) * fx;
    return top * (1 - fy) + bot * fy;
}

}  // namespace

Image syntheticScene(int width, int height, std::uint64_t seed) {
    util::Rng rng(seed);
    constexpr int kCells = 9;
    std::vector<double> lattice(kCells * kCells);
    for (double& v : lattice) v = rng.uniformReal(0.0, 1.0);

    // Random geometric content: a few disks and one rectangle.
    struct Disk {
        double cx, cy, r, value;
    };
    std::vector<Disk> disks;
    for (int i = 0; i < 4; ++i)
        disks.push_back(Disk{rng.uniformReal(0.1, 0.9), rng.uniformReal(0.1, 0.9),
                             rng.uniformReal(0.05, 0.2), rng.uniformReal(0.2, 1.0)});
    const double rx0 = rng.uniformReal(0.05, 0.5), ry0 = rng.uniformReal(0.05, 0.5);
    const double rx1 = rx0 + rng.uniformReal(0.1, 0.4), ry1 = ry0 + rng.uniformReal(0.1, 0.4);
    const double gradAngle = rng.uniformReal(0.0, 6.28318);

    Image image(width, height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const double u = static_cast<double>(x) / std::max(1, width - 1);
            const double v = static_cast<double>(y) / std::max(1, height - 1);
            double value = 0.35 + 0.3 * (std::cos(gradAngle) * u + std::sin(gradAngle) * v);
            value += 0.25 * valueNoise(lattice, kCells, u, v);
            for (const Disk& d : disks) {
                const double dx = u - d.cx, dy = v - d.cy;
                if (dx * dx + dy * dy < d.r * d.r) value = 0.6 * value + 0.4 * d.value;
            }
            if (u >= rx0 && u <= rx1 && v >= ry0 && v <= ry1) value = 1.0 - value;
            image.set(x, y,
                      static_cast<std::uint8_t>(std::clamp(value, 0.0, 1.0) * 255.0 + 0.5));
        }
    }
    return image;
}

double psnr(const Image& a, const Image& b) {
    double mse = 0.0;
    for (std::size_t i = 0; i < a.pixelCount(); ++i) {
        const double d =
            static_cast<double>(a.pixels()[i]) - static_cast<double>(b.pixels()[i]);
        mse += d * d;
    }
    mse /= static_cast<double>(a.pixelCount());
    if (mse <= 1e-12) return 99.0;
    return std::min(99.0, 10.0 * std::log10(255.0 * 255.0 / mse));
}

}  // namespace axf::img
