#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.hpp"

namespace axf::img {

/// 8-bit grayscale image with value semantics.
class Image {
public:
    Image() = default;
    Image(int width, int height, std::uint8_t fill = 0)
        : width_(width), height_(height),
          pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {}

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t pixelCount() const { return pixels_.size(); }

    std::uint8_t at(int x, int y) const {
        return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                       static_cast<std::size_t>(x)];
    }
    void set(int x, int y, std::uint8_t v) {
        pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                static_cast<std::size_t>(x)] = v;
    }

    /// Clamped accessor (border replication for convolution).
    std::uint8_t atClamped(int x, int y) const;

    const std::vector<std::uint8_t>& pixels() const { return pixels_; }
    std::vector<std::uint8_t>& pixels() { return pixels_; }

private:
    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> pixels_;
};

/// Deterministic synthetic test scenes: smooth gradients, geometric
/// structures, texture noise — enough spectral variety to exercise a
/// Gaussian filter the way natural benchmark images do.
Image syntheticScene(int width, int height, std::uint64_t seed);

/// Peak signal-to-noise ratio in dB (infinity-capped at 99 dB).
double psnr(const Image& a, const Image& b);

}  // namespace axf::img
