#include "src/cache/characterization_cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "src/obs/trace.hpp"
#include "src/util/crc32.hpp"
#include "src/util/io.hpp"
#include "src/verify/verify.hpp"

namespace axf::cache {

namespace {

constexpr std::uint32_t kShardMagic = 0x43465841;  // "AXFC" little-endian

/// FNV-1a over a byte range (payload checksums).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

/// CRC-32 over one shard entry: the key fields (in their on-disk order)
/// chained into the payload bytes, so a flipped bit anywhere in the entry
/// — key or payload — fails verification, not just payload rot.
std::uint32_t entryCrc(const CacheKey& key, const std::uint8_t* payload, std::size_t n) {
    // Key fields in their on-disk (little-endian) byte order, independent
    // of host endianness, so the checksum matches the file on any host.
    std::uint8_t keyBytes[28];
    std::uint8_t* p = keyBytes;
    for (std::uint64_t v : {key.structuralHash, key.signatureDigest, key.configDigest})
        for (int i = 0; i < 8; ++i) *p++ = static_cast<std::uint8_t>(v >> (8 * i));
    for (int i = 0; i < 4; ++i) *p++ = static_cast<std::uint8_t>(key.kind >> (8 * i));
    const std::uint32_t seed = util::crc32(keyBytes, sizeof keyBytes);
    return util::crc32(payload, n, seed);
}

/// splitmix64 — cheap avalanche for digest accumulation.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Order-sensitive digest builder for config structs.
class Digest {
public:
    Digest& u64(std::uint64_t v) {
        state_ = mix64(state_ ^ mix64(v + count_++));
        return *this;
    }
    Digest& f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        return u64(bits);
    }
    Digest& i(long long v) { return u64(static_cast<std::uint64_t>(v)); }
    Digest& str(std::string_view s) {
        u64(s.size());
        return u64(fnv1a(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
    }
    std::uint64_t value() const { return state_; }

private:
    std::uint64_t state_ = 0x5CA1AB1E0DDBA11ull;
    std::uint64_t count_ = 0;
};

}  // namespace

std::size_t CacheKeyHash::operator()(const CacheKey& k) const {
    std::uint64_t h = mix64(k.structuralHash);
    h = mix64(h ^ k.signatureDigest);
    h = mix64(h ^ k.configDigest);
    h = mix64(h ^ k.kind);
    return static_cast<std::size_t>(h);
}

std::string CacheStats::summary() const {
    std::ostringstream os;
    const std::uint64_t lookups = hits + misses;
    os << hits << "/" << lookups << " hits";
    if (lookups > 0)
        os << " (" << static_cast<int>(100.0 * static_cast<double>(hits) /
                                       static_cast<double>(lookups) + 0.5)
           << "%)";
    os << ", " << stores << " stores, " << evictions << " evictions, " << diskEntriesLoaded
       << " loaded from disk, " << corruptEntriesDropped << " corrupt dropped, "
       << entriesFlushed << " flushed";
    if (shardWriteRetries > 0 || shardWriteFailures > 0)
        os << ", " << shardWriteRetries << " write retries, " << shardWriteFailures
           << " write failures";
    return os.str();
}

CharacterizationCache::CharacterizationCache() {
    // Contribute this instance's counters as process-wide `cache.*`
    // metrics; the snapshot merge sums them across live instances.
    collectorId_ = obs::Registry::global().addCollector([this](obs::MetricsSnapshot& snap) {
        snap.addCounter("cache.hits", hits_.value());
        snap.addCounter("cache.misses", misses_.value());
        snap.addCounter("cache.stores", stores_.value());
        snap.addCounter("cache.evictions", evictions_.value());
        snap.addCounter("cache.disk_entries_loaded", diskEntriesLoaded_.value());
        snap.addCounter("cache.corrupt_entries_dropped", corruptEntriesDropped_.value());
        snap.addCounter("cache.entries_flushed", entriesFlushed_.value());
        snap.addCounter("cache.shard_write_retries", shardWriteRetries_.value());
        snap.addCounter("cache.shard_write_failures", shardWriteFailures_.value());
    });
}

CharacterizationCache::CharacterizationCache(Options options) : CharacterizationCache() {
    options_ = std::move(options);
    if (options_.directory.empty()) return;
    obs::Span span("cache_load", options_.directory);
    std::error_code ec;
    std::filesystem::create_directories(options_.directory, ec);  // best effort
    for (std::size_t i = 0; i < kStripes; ++i) loadShard(i);
}

CharacterizationCache::~CharacterizationCache() {
    try {
        flush();
    } catch (...) {
        // Best effort: a full disk at shutdown must not terminate the
        // process; the cache is a pure accelerator.
    }
    obs::Registry::global().removeCollector(collectorId_);
}

std::string CharacterizationCache::shardPath(std::size_t stripe) const {
    char name[32];
    std::snprintf(name, sizeof name, "shard_%02zx.axc", stripe);
    return options_.directory + "/" + name;
}

void CharacterizationCache::loadShard(std::size_t stripe) {
    std::ifstream in(shardPath(stripe), std::ios::binary);
    if (!in) return;
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    util::ByteReader reader(bytes);

    std::uint32_t magic = 0, version = 0;
    std::uint64_t count = 0;
    if (!reader.u32(magic) || !reader.u32(version) || !reader.u64(count) ||
        magic != kShardMagic || version != kSchemaVersion) {
        // Foreign or stale-schema file: ignore wholesale, entries recompute.
        corruptEntriesDropped_.addAlways();
        return;
    }

    Stripe& s = stripes_[stripe];
    std::lock_guard<std::mutex> lock(s.mutex);
    for (std::uint64_t e = 0; e < count; ++e) {
        CacheKey key;
        std::uint32_t payloadSize = 0;
        std::uint32_t checksum = 0;
        reader.u64(key.structuralHash);
        reader.u64(key.signatureDigest);
        reader.u64(key.configDigest);
        reader.u32(key.kind);
        if (!reader.u32(payloadSize) || !reader.u32(checksum) ||
            reader.remaining() < payloadSize) {
            // Truncated entry: nothing after it can be framed reliably.
            corruptEntriesDropped_.addAlways();
            break;
        }
        std::vector<std::uint8_t> payload(payloadSize);
        reader.raw(payload.data(), payloadSize);
        if (entryCrc(key, payload.data(), payload.size()) != checksum || stripeOf(key) != stripe) {
            // Bit rot (or an entry filed under the wrong prefix): skip this
            // entry but keep scanning — the framing is still intact.
            corruptEntriesDropped_.addAlways();
            continue;
        }
        if (s.entries.emplace(key, std::move(payload)).second) {
            s.order.push_back(key);
            diskEntriesLoaded_.addAlways();
        }
    }
}

void CharacterizationCache::writeShard(std::size_t stripe, Stripe& s) {
    obs::Span span("cache_shard_write");
    util::ByteWriter out;
    out.u32(kShardMagic);
    out.u32(kSchemaVersion);
    out.u64(s.entries.size());
    // Walk in insertion order so shard files are deterministic for a given
    // store sequence (stable diffs, reproducible fleet artifacts).
    for (const CacheKey& key : s.order) {
        const auto it = s.entries.find(key);
        if (it == s.entries.end()) continue;  // evicted after insertion
        const std::vector<std::uint8_t>& payload = it->second;
        out.u64(key.structuralHash);
        out.u64(key.signatureDigest);
        out.u64(key.configDigest);
        out.u32(key.kind);
        out.u32(static_cast<std::uint32_t>(payload.size()));
        out.u32(entryCrc(key, payload.data(), payload.size()));
        out.raw(payload.data(), payload.size());
    }

    // Durable replace: write-to-temporary + fsync + rename (+ directory
    // fsync), retrying transient failures with backoff.  A failed write is
    // logged in the stats but must not kill the process — the cache is a
    // pure accelerator and the stripe stays dirty for the next flush.
    const util::AtomicWriteResult written =
        util::atomicWriteFile(shardPath(stripe), out.bytes());
    if (written.attempts > 1)
        shardWriteRetries_.addAlways(written.attempts - 1);
    if (!written) {
        shardWriteFailures_.addAlways();
        return;
    }
    entriesFlushed_.addAlways(s.entries.size());
    s.dirty = false;
}

void CharacterizationCache::flush() {
    if (options_.directory.empty()) return;
    obs::Span span("cache_flush", options_.directory);
    for (std::size_t i = 0; i < kStripes; ++i) {
        Stripe& s = stripes_[i];
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.dirty) writeShard(i, s);
    }
}

std::optional<std::vector<std::uint8_t>> CharacterizationCache::findBytes(const CacheKey& key) {
    Stripe& s = stripes_[stripeOf(key)];
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.entries.find(key);
    if (it == s.entries.end()) {
        misses_.addAlways();
        return std::nullopt;
    }
    hits_.addAlways();
    return it->second;
}

void CharacterizationCache::putBytes(const CacheKey& key, std::vector<std::uint8_t> payload) {
    Stripe& s = stripes_[stripeOf(key)];
    std::lock_guard<std::mutex> lock(s.mutex);
    // Content-addressed entries are interchangeable, so overwriting is
    // harmless under races — and it self-heals an undecodable payload that
    // slipped past the shard checksum (the caller recomputed it).
    auto [it, inserted] = s.entries.insert_or_assign(key, std::move(payload));
    s.dirty = true;
    if (!inserted) return;
    s.order.push_back(key);
    stores_.addAlways();
    if (options_.maxEntries != 0) {
        const std::size_t perStripe = std::max<std::size_t>(1, options_.maxEntries / kStripes);
        while (s.entries.size() > perStripe && !s.order.empty()) {
            s.entries.erase(s.order.front());
            s.order.pop_front();
            evictions_.addAlways();
        }
    }
}

std::optional<circuit::Netlist> CharacterizationCache::findNetlist(const CacheKey& key,
                                                                  std::uint64_t* hashOut) {
    const std::optional<std::vector<std::uint8_t>> bytes = findBytes(key);
    if (!bytes) return std::nullopt;
    util::ByteReader reader(*bytes);
    std::uint64_t storedHash = 0;
    std::optional<circuit::Netlist> net;
    if (reader.u64(storedHash)) net = circuit::Netlist::deserialize(reader);
    if (net && net->structuralHash() != storedHash) net.reset();
    if (net && options_.verifyNetlists && verify::lintNetlist(*net).hasErrors()) net.reset();
    if (!net) {
        // Decoded-but-illegal payloads are corrupt entries in every way
        // that matters: count them and report a miss (the caller
        // recomputes; its putNetlist self-heals the entry).
        corruptEntriesDropped_.addAlways();
        misses_.addAlways();
        hits_.subAlways();
        return std::nullopt;
    }
    if (hashOut != nullptr) *hashOut = storedHash;
    return net;
}

void CharacterizationCache::putNetlist(const CacheKey& key, const circuit::Netlist& netlist,
                                       std::uint64_t hash) {
    util::ByteWriter out;
    out.u64(hash);
    netlist.serialize(out);
    putBytes(key, out.take());
}

void CharacterizationCache::forEachEntry(
    const std::function<void(const CacheKey&, const std::vector<std::uint8_t>&)>& fn) {
    for (Stripe& s : stripes_) {
        std::lock_guard<std::mutex> lock(s.mutex);
        for (const auto& [key, payload] : s.entries) fn(key, payload);
    }
}

namespace {

template <typename Report>
std::optional<Report> decodeReport(std::optional<std::vector<std::uint8_t>> bytes) {
    if (!bytes) return std::nullopt;
    util::ByteReader reader(*bytes);
    Report report;
    if (!Report::deserialize(reader, report)) return std::nullopt;
    return report;
}

template <typename Report>
std::vector<std::uint8_t> encodeReport(const Report& report) {
    util::ByteWriter out;
    report.serialize(out);
    return out.take();
}

void checkKind(const CacheKey& key, PayloadKind kind) {
    if (key.kind != static_cast<std::uint32_t>(kind))
        throw std::logic_error("CharacterizationCache: key/payload kind mismatch");
}

}  // namespace

std::optional<error::ErrorReport> CharacterizationCache::findError(const CacheKey& key) {
    checkKind(key, PayloadKind::ErrorProfile);
    return decodeReport<error::ErrorReport>(findBytes(key));
}

void CharacterizationCache::putError(const CacheKey& key, const error::ErrorReport& report) {
    checkKind(key, PayloadKind::ErrorProfile);
    putBytes(key, encodeReport(report));
}

std::optional<synth::AsicReport> CharacterizationCache::findAsic(const CacheKey& key) {
    checkKind(key, PayloadKind::AsicReport);
    return decodeReport<synth::AsicReport>(findBytes(key));
}

void CharacterizationCache::putAsic(const CacheKey& key, const synth::AsicReport& report) {
    checkKind(key, PayloadKind::AsicReport);
    putBytes(key, encodeReport(report));
}

std::optional<synth::FpgaReport> CharacterizationCache::findFpga(const CacheKey& key) {
    checkKind(key, PayloadKind::FpgaReport);
    return decodeReport<synth::FpgaReport>(findBytes(key));
}

void CharacterizationCache::putFpga(const CacheKey& key, const synth::FpgaReport& report) {
    checkKind(key, PayloadKind::FpgaReport);
    putBytes(key, encodeReport(report));
}

std::optional<fault::ResilienceReport> CharacterizationCache::findResilience(
    const CacheKey& key) {
    checkKind(key, PayloadKind::Resilience);
    return decodeReport<fault::ResilienceReport>(findBytes(key));
}

void CharacterizationCache::putResilience(const CacheKey& key,
                                          const fault::ResilienceReport& report) {
    checkKind(key, PayloadKind::Resilience);
    putBytes(key, encodeReport(report));
}

CacheStats CharacterizationCache::stats() const {
    CacheStats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.stores = stores_.value();
    s.evictions = evictions_.value();
    s.diskEntriesLoaded = diskEntriesLoaded_.value();
    s.corruptEntriesDropped = corruptEntriesDropped_.value();
    s.entriesFlushed = entriesFlushed_.value();
    s.shardWriteRetries = shardWriteRetries_.value();
    s.shardWriteFailures = shardWriteFailures_.value();
    return s;
}

std::size_t CharacterizationCache::size() const {
    std::size_t n = 0;
    for (const Stripe& s : stripes_) {
        std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(s.mutex));
        n += s.entries.size();
    }
    return n;
}

// --- digests and keys -------------------------------------------------------

std::uint64_t CharacterizationCache::digestOf(const circuit::ArithSignature& sig) {
    return Digest()
        .i(static_cast<long long>(sig.op))
        .i(sig.widthA)
        .i(sig.widthB)
        .value();
}

std::uint64_t CharacterizationCache::digestOf(const error::ErrorAnalysisConfig& config,
                                              const circuit::ArithSignature& sig) {
    // Same predicate the analyzer uses to pick its path — a single shared
    // helper, so the key canonicalization can never drift from it.
    const bool exhaustive = config.isExhaustiveFor(sig);
    Digest d;
    d.str("error-analysis.v1");
    d.u64(exhaustive ? 1 : 0);
    if (!exhaustive) d.u64(config.sampleCount).u64(config.seed);
    // `threads` deliberately excluded: chunk-ordered merging keeps reports
    // bit-identical at any thread count.
    return d.value();
}

std::uint64_t CharacterizationCache::digestOf(const synth::AsicFlow::Options& options) {
    return Digest()
        // v2: activity stimulus moved to addressable per-block seeds
        // (chunk-parallel estimation) — power figures differ from v1.
        .str("asic-flow.v2")
        .f64(options.clockMhz)
        .i(options.activityBlocks)
        .u64(options.activitySeed)
        .f64(options.staticPowerPerCellUw)
        .value();
}

std::uint64_t CharacterizationCache::digestOf(const synth::FpgaFlow::Options& options) {
    return Digest()
        // v2: activity stimulus moved to addressable per-block seeds
        // (chunk-parallel estimation) — power figures differ from v1.
        .str("fpga-flow.v2")
        .i(options.mapper.lutInputs)
        .i(options.mapper.cutsPerNode)
        .f64(options.lutDelayNs)
        .f64(options.netDelayBaseNs)
        .f64(options.netDelayFanoutNs)
        .f64(options.ioDelayNs)
        .f64(options.routingJitterNs)
        .f64(options.clockMhz)
        .f64(options.lutCapFf)
        .f64(options.wireCapFf)
        .f64(options.staticPowerPerLutUw)
        .f64(options.powerJitterFraction)
        .i(options.activityBlocks)
        .u64(options.seed)
        .u64(options.activitySeed)
        .value();
}

std::uint64_t CharacterizationCache::digestOf(const fault::CampaignConfig& config,
                                              const circuit::ArithSignature& sig) {
    const bool exhaustive = config.analysis.isExhaustiveFor(sig);
    Digest d;
    d.str("fault-campaign.v1");
    d.u64(exhaustive ? 1 : 0);
    if (!exhaustive) d.u64(config.analysis.sampleCount).u64(config.analysis.seed);
    // `threads` deliberately excluded: the campaign's block-ordered merge
    // keeps reports bit-identical at any thread count.
    d.u64(config.includeInputFaults ? 1 : 0);
    d.u64(config.collapseEquivalent ? 1 : 0);
    d.f64(config.criticalFactor);
    d.f64(config.criticalFloor);
    d.u64(config.maxCritical);
    return d.value();
}

CacheKey CharacterizationCache::errorKey(std::uint64_t structuralHash,
                                         const circuit::ArithSignature& sig,
                                         const error::ErrorAnalysisConfig& config) {
    return CacheKey{structuralHash, digestOf(sig), digestOf(config, sig),
                    static_cast<std::uint32_t>(PayloadKind::ErrorProfile)};
}

CacheKey CharacterizationCache::asicKey(std::uint64_t structuralHash,
                                        const synth::AsicFlow::Options& options) {
    return CacheKey{structuralHash, 0, digestOf(options),
                    static_cast<std::uint32_t>(PayloadKind::AsicReport)};
}

CacheKey CharacterizationCache::fpgaKey(std::uint64_t structuralHash,
                                        const synth::FpgaFlow::Options& options) {
    return CacheKey{structuralHash, 0, digestOf(options),
                    static_cast<std::uint32_t>(PayloadKind::FpgaReport)};
}

CacheKey CharacterizationCache::resilienceKey(std::uint64_t structuralHash,
                                              const circuit::ArithSignature& sig,
                                              const fault::CampaignConfig& config) {
    return CacheKey{structuralHash, digestOf(sig), digestOf(config, sig),
                    static_cast<std::uint32_t>(PayloadKind::Resilience)};
}

CacheKey CharacterizationCache::blobKey(std::uint64_t structuralHash, std::string_view tag) {
    return CacheKey{structuralHash, 0, Digest().str(tag).value(),
                    static_cast<std::uint32_t>(PayloadKind::Blob)};
}

// --- null-tolerant wrappers --------------------------------------------------

error::ErrorReport analyzeErrorCached(CharacterizationCache* cache, std::uint64_t structuralHash,
                                      const circuit::Netlist& netlist,
                                      const circuit::ArithSignature& sig,
                                      const error::ErrorAnalysisConfig& config) {
    if (cache == nullptr) return error::analyzeError(netlist, sig, config);
    const CacheKey key = CharacterizationCache::errorKey(structuralHash, sig, config);
    if (std::optional<error::ErrorReport> hit = cache->findError(key)) return *hit;
    const error::ErrorReport report = error::analyzeError(netlist, sig, config);
    cache->putError(key, report);
    return report;
}

fault::ResilienceReport analyzeResilienceCached(CharacterizationCache* cache,
                                                std::uint64_t structuralHash,
                                                const circuit::Netlist& netlist,
                                                const circuit::ArithSignature& sig,
                                                const fault::CampaignConfig& config) {
    if (cache == nullptr) return fault::analyzeResilience(netlist, sig, config);
    const CacheKey key = CharacterizationCache::resilienceKey(structuralHash, sig, config);
    if (std::optional<fault::ResilienceReport> hit = cache->findResilience(key)) return *hit;
    const fault::ResilienceReport report = fault::analyzeResilience(netlist, sig, config);
    cache->putResilience(key, report);
    return report;
}

synth::AsicReport synthesizeCached(CharacterizationCache* cache, const synth::AsicFlow& flow,
                                   const circuit::Netlist& netlist) {
    if (cache == nullptr) return flow.synthesize(netlist);
    const CacheKey key =
        CharacterizationCache::asicKey(netlist.structuralHash(), flow.options());
    if (std::optional<synth::AsicReport> hit = cache->findAsic(key)) return *hit;
    const synth::AsicReport report = flow.synthesize(netlist);
    cache->putAsic(key, report);
    return report;
}

synth::FpgaReport implementCached(CharacterizationCache* cache, const synth::FpgaFlow& flow,
                                  const circuit::Netlist& netlist) {
    if (cache == nullptr) return flow.implement(netlist);
    const CacheKey key =
        CharacterizationCache::fpgaKey(netlist.structuralHash(), flow.options());
    if (std::optional<synth::FpgaReport> hit = cache->findFpga(key)) return *hit;
    const synth::FpgaReport report = flow.implement(netlist);
    cache->putFpga(key, report);
    return report;
}

}  // namespace axf::cache
