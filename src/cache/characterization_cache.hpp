#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"
#include "src/error/error_metrics.hpp"
#include "src/fault/fault.hpp"
#include "src/obs/metrics.hpp"
#include "src/synth/asic.hpp"
#include "src/synth/fpga.hpp"

namespace axf::cache {

/// Payload type discriminator baked into every key, so a report kind can
/// never deserialize into the wrong struct even on a hash collision of the
/// other key fields.
enum class PayloadKind : std::uint32_t {
    ErrorProfile = 1,  ///< error::ErrorReport
    AsicReport = 2,    ///< synth::AsicReport
    FpgaReport = 3,    ///< synth::FpgaReport
    Blob = 4,          ///< free-form bytes (simplified netlists, LUT tables)
    Resilience = 5,    ///< fault::ResilienceReport
};

/// Content address of one characterization artifact.
struct CacheKey {
    std::uint64_t structuralHash = 0;   ///< Netlist::structuralHash of the circuit
    std::uint64_t signatureDigest = 0;  ///< arithmetic interface (0 when n/a)
    std::uint64_t configDigest = 0;     ///< result-affecting knobs of the producing flow
    std::uint32_t kind = 0;             ///< PayloadKind

    friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
};

/// Monotonic counters of one cache instance (process lifetime).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t diskEntriesLoaded = 0;    ///< entries adopted from shard files
    std::uint64_t corruptEntriesDropped = 0;  ///< bad checksum / truncated / stale schema
    std::uint64_t entriesFlushed = 0;
    std::uint64_t shardWriteRetries = 0;   ///< transient write failures retried by flush
    std::uint64_t shardWriteFailures = 0;  ///< shard writes abandoned after all retries

    std::string summary() const;
};

/// Content-addressed characterization store shared by library builds, the
/// ApproxFPGAs flow and the accelerator DSE: error profiles, ASIC/FPGA
/// reports and derived blobs keyed by (structural hash, arithmetic
/// signature, config digest, payload kind) under a global schema version.
///
/// Concurrency: the key space is split over 64 stripes by structural-hash
/// prefix, each stripe behind its own mutex, so the `util::ThreadPool`
/// characterization pipelines can hit the cache from every worker without
/// serializing on one lock.
///
/// Persistence (optional): each stripe maps to one binary shard file named
/// by its hash prefix inside the cache directory.  Shard files are loaded
/// on construction and rewritten by `flush()` via write-to-temporary +
/// fsync + atomic rename (`util::atomicWriteFile`, with bounded
/// retry-with-backoff on transient failures), so concurrent
/// readers/writers of the same directory never observe a half-written
/// shard and a crash right after flush cannot leave an empty or torn
/// file behind the rename.  Every entry carries a CRC-32 over its key
/// and payload bytes; corrupt entries, truncated shards and
/// schema-version mismatches are dropped silently — the consumer just
/// recomputes and the next flush repairs the file.
class CharacterizationCache {
public:
    /// Bump whenever any serialized payload layout changes — or when a
    /// producer's numeric output may shift (v2: the error-metric
    /// accumulator moved to explicit vector arithmetic, which can contract
    /// differently at the last ulp than the old scalar codegen; v3: the
    /// per-entry checksum became a u32 CRC-32 over key + payload, so a
    /// bit flip anywhere in an entry — not just its payload — is caught);
    /// shard files written under another version are ignored wholesale.
    static constexpr std::uint32_t kSchemaVersion = 3;

    struct Options {
        std::string directory;  ///< empty = in-memory only (no persistence)
        /// Soft bound on resident entries (0 = unbounded).  Enforced per
        /// stripe in insertion order (FIFO), trading exactness for lock
        /// locality.
        std::size_t maxEntries = 0;
        /// Statically lint every netlist payload served by `findNetlist`
        /// (src/verify).  Cache directories are shared, externally
        /// writable state; a blob that deserializes but breaks a
        /// structural invariant is treated exactly like a corrupt entry —
        /// a miss, counted in `corruptEntriesDropped` — so downstream
        /// consumers never evaluate it.
        bool verifyNetlists = false;
    };

    CharacterizationCache();  ///< in-memory only
    explicit CharacterizationCache(Options options);
    ~CharacterizationCache();  ///< best-effort flush of dirty shards

    CharacterizationCache(const CharacterizationCache&) = delete;
    CharacterizationCache& operator=(const CharacterizationCache&) = delete;

    // --- generic byte-payload interface ------------------------------------
    std::optional<std::vector<std::uint8_t>> findBytes(const CacheKey& key);
    void putBytes(const CacheKey& key, std::vector<std::uint8_t> payload);

    // --- typed report interface (kind checked against the key) -------------
    std::optional<error::ErrorReport> findError(const CacheKey& key);
    void putError(const CacheKey& key, const error::ErrorReport& report);
    std::optional<synth::AsicReport> findAsic(const CacheKey& key);
    void putAsic(const CacheKey& key, const synth::AsicReport& report);
    std::optional<synth::FpgaReport> findFpga(const CacheKey& key);
    void putFpga(const CacheKey& key, const synth::FpgaReport& report);
    std::optional<fault::ResilienceReport> findResilience(const CacheKey& key);
    void putResilience(const CacheKey& key, const fault::ResilienceReport& report);

    // --- netlist payloads (Blob kind, hash-prefixed) ------------------------
    /// Finds a netlist stored by `putNetlist`: the payload's embedded
    /// structural hash must match the rebuilt netlist (tamper check), and
    /// with `Options::verifyNetlists` the netlist must also pass the
    /// src/verify linter.  Either failure counts as a corrupt miss.
    /// `hashOut` (optional) receives the embedded hash.
    std::optional<circuit::Netlist> findNetlist(const CacheKey& key,
                                                std::uint64_t* hashOut = nullptr);
    /// Stores `netlist` under `key` with its structural hash `hash`
    /// prefixed (callers usually already computed it).
    void putNetlist(const CacheKey& key, const circuit::Netlist& netlist, std::uint64_t hash);

    /// Visits every resident entry (key + payload bytes) under the stripe
    /// locks; `fn` must not reenter the cache.  This is the enumeration
    /// hook for offline auditing (axf-lint --cache).
    void forEachEntry(const std::function<void(const CacheKey&,
                                               const std::vector<std::uint8_t>&)>& fn);

    /// Writes every dirty shard to disk (no-op for in-memory caches).
    void flush();

    CacheStats stats() const;
    std::size_t size() const;
    const std::string& directory() const { return options_.directory; }

    // --- key construction --------------------------------------------------
    static std::uint64_t digestOf(const circuit::ArithSignature& sig);
    /// Digest of the result-affecting error-analysis knobs.  `threads` is
    /// excluded (reports are bit-identical at any thread count), and for
    /// input spaces within the exhaustive limit the sampling knobs are
    /// canonicalized away — every exhaustive sweep of the same circuit
    /// shares one entry regardless of the configured sample policy.
    static std::uint64_t digestOf(const error::ErrorAnalysisConfig& config,
                                  const circuit::ArithSignature& sig);
    /// Each flow digest folds in a versioned producer tag (e.g.
    /// "fpga-flow.v1").  Options alone cannot see a change to the model
    /// *code* — bump the producer's tag version whenever its formulas
    /// change semantics, or persisted stores would serve stale reports.
    static std::uint64_t digestOf(const synth::AsicFlow::Options& options);
    static std::uint64_t digestOf(const synth::FpgaFlow::Options& options);
    /// Digest of the result-affecting fault-campaign knobs; the embedded
    /// analysis config is canonicalized the same way as the error digest
    /// (threads excluded, sampling knobs dropped for exhaustive spaces).
    static std::uint64_t digestOf(const fault::CampaignConfig& config,
                                  const circuit::ArithSignature& sig);

    static CacheKey errorKey(std::uint64_t structuralHash, const circuit::ArithSignature& sig,
                             const error::ErrorAnalysisConfig& config);
    static CacheKey asicKey(std::uint64_t structuralHash,
                            const synth::AsicFlow::Options& options);
    static CacheKey fpgaKey(std::uint64_t structuralHash,
                            const synth::FpgaFlow::Options& options);
    static CacheKey resilienceKey(std::uint64_t structuralHash,
                                  const circuit::ArithSignature& sig,
                                  const fault::CampaignConfig& config);
    /// Free-form payloads; `tag` names the artifact family (and version).
    static CacheKey blobKey(std::uint64_t structuralHash, std::string_view tag);

private:
    static constexpr std::size_t kStripes = 64;

    struct Stripe {
        std::mutex mutex;
        std::unordered_map<CacheKey, std::vector<std::uint8_t>, CacheKeyHash> entries;
        std::deque<CacheKey> order;  ///< insertion order, for FIFO eviction
        bool dirty = false;
    };

    static std::size_t stripeOf(const CacheKey& key) {
        return static_cast<std::size_t>(key.structuralHash >> 58);  // top 6 bits
    }

    std::string shardPath(std::size_t stripe) const;
    void loadShard(std::size_t stripe);
    void writeShard(std::size_t stripe, Stripe& s);  ///< caller holds s.mutex

    Options options_;
    std::array<Stripe, kStripes> stripes_;

    // Per-instance counters on the obs primitives (sharded relaxed adds —
    // the same hot-path cost as the raw atomics they replaced).  `stats()`
    // stays per-instance and exact regardless of the process metrics
    // switch (addAlways), while a registry collector contributes the same
    // numbers as `cache.*` process metrics, summed across live instances
    // at snapshot time.
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter stores_;
    obs::Counter evictions_;
    obs::Counter diskEntriesLoaded_;
    obs::Counter corruptEntriesDropped_;
    obs::Counter entriesFlushed_;
    obs::Counter shardWriteRetries_;
    obs::Counter shardWriteFailures_;
    std::size_t collectorId_ = 0;
};

// --- null-tolerant convenience wrappers ------------------------------------
// One-liners for the characterization pipelines: `cache == nullptr` falls
// back to the plain computation, so every injection point keeps today's
// behavior by default.

/// Cached `error::analyzeError`; `structuralHash` must be the hash of
/// `netlist` (passed in because callers usually already computed it).
error::ErrorReport analyzeErrorCached(CharacterizationCache* cache, std::uint64_t structuralHash,
                                      const circuit::Netlist& netlist,
                                      const circuit::ArithSignature& sig,
                                      const error::ErrorAnalysisConfig& config);

/// Cached `fault::analyzeResilience`; `structuralHash` must be the hash of
/// `netlist` (passed in because callers usually already computed it).
fault::ResilienceReport analyzeResilienceCached(CharacterizationCache* cache,
                                                std::uint64_t structuralHash,
                                                const circuit::Netlist& netlist,
                                                const circuit::ArithSignature& sig,
                                                const fault::CampaignConfig& config);

/// Cached `synth::AsicFlow::synthesize`.
synth::AsicReport synthesizeCached(CharacterizationCache* cache, const synth::AsicFlow& flow,
                                   const circuit::Netlist& netlist);

/// Cached `synth::FpgaFlow::implement`.
synth::FpgaReport implementCached(CharacterizationCache* cache, const synth::FpgaFlow& flow,
                                  const circuit::Netlist& netlist);

}  // namespace axf::cache
