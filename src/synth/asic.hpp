#pragma once

#include <cstdint>

#include "src/circuit/netlist.hpp"
#include "src/synth/metrics.hpp"

namespace axf::synth {

/// Standard-cell characterization of one gate kind (normalized 45 nm-ish
/// units; NAND2 = 1 area unit = 0.8 um^2 equivalent).
struct CellSpec {
    double areaUm2 = 0.0;
    double delayNs = 0.0;       ///< intrinsic delay
    double loadDelayNs = 0.0;   ///< added delay per fan-out
    double capFf = 0.0;         ///< switched capacitance (power weight)
};

/// Gate-level ASIC synthesis model: logic optimization, direct cell
/// binding, static timing with a linear load model, and switching-activity
/// power from simulated toggle rates.
class AsicFlow {
public:
    struct Options {
        double clockMhz = 200.0;     ///< activity-to-power conversion frequency
        int activityBlocks = 24;     ///< 64-vector blocks for toggle estimation
        std::uint64_t activitySeed = 0xAC7;
        double staticPowerPerCellUw = 0.12;
    };

    AsicFlow() = default;
    explicit AsicFlow(Options options) : options_(options) {}

    /// Characterization table for a gate kind.
    static const CellSpec& cellSpec(circuit::GateKind kind);

    /// Synthesizes (optimizes + maps + analyzes) the netlist.
    AsicReport synthesize(const circuit::Netlist& netlist) const;

    const Options& options() const { return options_; }

private:
    Options options_{};
};

}  // namespace axf::synth
