#include "src/synth/lutmap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace axf::synth {

using circuit::GateKind;
using circuit::Netlist;
using circuit::NodeId;

namespace {

/// A cut: sorted leaf list plus its depth label (1 + max leaf label).
struct Cut {
    std::vector<NodeId> leaves;
    int label = 0;

    bool dominates(const Cut& other) const {
        // `this` dominates when not deeper and its leaves are a subset.
        if (label > other.label) return false;
        return std::includes(other.leaves.begin(), other.leaves.end(), leaves.begin(),
                             leaves.end());
    }
};

/// Merges two sorted leaf sets; returns false if the union exceeds k.
bool mergeLeaves(const std::vector<NodeId>& a, const std::vector<NodeId>& b, int k,
                 std::vector<NodeId>& out) {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        NodeId next;
        if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
            next = a[i++];
        } else if (i >= a.size() || b[j] < a[i]) {
            next = b[j++];
        } else {
            next = a[i++];
            ++j;
        }
        out.push_back(next);
        if (static_cast<int>(out.size()) > k) return false;
    }
    return true;
}

}  // namespace

LutMapper::Mapping LutMapper::map(const Netlist& netlist) const {
    const int k = options_.lutInputs;
    const std::size_t n = netlist.nodeCount();

    // --- phase 1: priority-cut enumeration with depth labels -------------
    std::vector<std::vector<Cut>> cuts(n);  // candidate cuts per gate node
    std::vector<int> label(n, 0);           // FlowMap-style depth label
    std::vector<Cut> bestCut(n);

    for (std::size_t i = 0; i < n; ++i) {
        const circuit::Node& node = netlist.node(static_cast<NodeId>(i));
        const int arity = circuit::fanInCount(node.kind);
        if (arity == 0) {
            label[i] = 0;  // inputs and constants are free fabric resources
            continue;
        }
        if (arity > 2)
            throw std::invalid_argument("LutMapper: run lowerToTwoInput before mapping");

        // Candidate fan-in cut lists, each extended with the trivial cut.
        const auto candidateCuts = [&](NodeId fanin) {
            std::vector<Cut> list = cuts[fanin];
            Cut trivial;
            trivial.leaves = {fanin};
            trivial.label = label[fanin];
            list.push_back(std::move(trivial));
            return list;
        };

        // The label of a cut is 1 + the worst *leaf* label: everything
        // inside the cut collapses into this LUT and costs no extra level.
        const auto cutLabel = [&](const std::vector<NodeId>& leaves) {
            int worst = 0;
            for (NodeId leaf : leaves) worst = std::max(worst, label[leaf]);
            return worst + 1;
        };

        std::vector<Cut> merged;
        std::vector<NodeId> scratch;
        const std::vector<Cut> ca = candidateCuts(node.a);
        if (arity == 1) {
            for (const Cut& c : ca) {
                Cut cut;
                cut.leaves = c.leaves;
                cut.label = cutLabel(cut.leaves);
                merged.push_back(std::move(cut));
            }
        } else {
            const std::vector<Cut> cb = candidateCuts(node.b);
            for (const Cut& x : ca) {
                for (const Cut& y : cb) {
                    if (!mergeLeaves(x.leaves, y.leaves, k, scratch)) continue;
                    Cut cut;
                    cut.leaves = scratch;
                    cut.label = cutLabel(cut.leaves);
                    merged.push_back(std::move(cut));
                }
            }
        }

        // Rank by (depth, leaf count), drop dominated cuts, keep the best C.
        std::sort(merged.begin(), merged.end(), [](const Cut& x, const Cut& y) {
            if (x.label != y.label) return x.label < y.label;
            return x.leaves.size() < y.leaves.size();
        });
        std::vector<Cut> kept;
        for (Cut& c : merged) {
            bool dominated = false;
            for (const Cut& existing : kept) {
                if (existing.dominates(c)) {
                    dominated = true;
                    break;
                }
            }
            if (dominated) continue;
            kept.push_back(std::move(c));
            if (static_cast<int>(kept.size()) >= options_.cutsPerNode) break;
        }
        if (kept.empty()) throw std::logic_error("LutMapper: node has no feasible cut");
        label[i] = kept.front().label;
        bestCut[i] = kept.front();
        cuts[i] = std::move(kept);
    }

    // --- phase 2: cover selection from the outputs back ------------------
    std::vector<bool> selected(n, false);
    std::vector<bool> needed(n, false);
    for (NodeId out : netlist.outputs()) needed[out] = true;
    for (std::size_t idx = n; idx-- > 0;) {
        if (!needed[idx]) continue;
        const circuit::Node& node = netlist.node(static_cast<NodeId>(idx));
        if (circuit::fanInCount(node.kind) == 0) continue;  // input/const drive
        selected[idx] = true;
        for (NodeId leaf : bestCut[idx].leaves) needed[leaf] = true;
    }

    Mapping mapping;
    for (std::size_t i = 0; i < n; ++i) {
        if (!selected[i]) continue;
        Lut lut;
        lut.root = static_cast<NodeId>(i);
        lut.leaves = bestCut[i].leaves;
        lut.level = label[i];
        mapping.luts.push_back(std::move(lut));
    }
    for (NodeId out : netlist.outputs()) mapping.depth = std::max(mapping.depth, label[out]);
    return mapping;
}

}  // namespace axf::synth
