#pragma once

#include <vector>

#include "src/circuit/netlist.hpp"

namespace axf::synth {

/// Cut-based K-LUT technology mapping (FlowMap-style depth-oriented labels
/// computed by priority-cut enumeration, as in ABC's `if` mapper).
///
/// The input netlist must contain only gates with at most two fan-ins
/// (run `circuit::lowerToTwoInput` first); constants and inputs are free.
class LutMapper {
public:
    struct Options {
        int lutInputs = 6;    ///< K of the target fabric (Virtex-7: 6-LUT)
        int cutsPerNode = 8;  ///< priority-cut list length
    };

    /// One selected LUT in the mapped network.
    struct Lut {
        circuit::NodeId root;
        std::vector<circuit::NodeId> leaves;  ///< inputs of the LUT (node ids)
        int level = 0;                        ///< LUT depth from the inputs
    };

    struct Mapping {
        std::vector<Lut> luts;
        int depth = 0;  ///< max LUT level over primary outputs

        std::size_t lutCount() const { return luts.size(); }
    };

    LutMapper() = default;
    explicit LutMapper(Options options) : options_(options) {}

    Mapping map(const circuit::Netlist& netlist) const;

private:
    Options options_{};
};

}  // namespace axf::synth
