#pragma once

#include "src/circuit/netlist.hpp"

namespace axf::synth {

/// Vivado-equivalent synthesis + place & route wall-clock model.
///
/// The paper reports ~6 days for 10% of the 4,494-circuit 8x8 multiplier
/// library on an i5-7600 (~115 s per circuit) and 82.4 days for exhaustive
/// exploration of the whole six-library corpus.  Our simulated flow runs in
/// milliseconds, so exploration-time results (Fig. 3) are reported through
/// this calibrated model instead of raw wall time; the substitution is
/// documented in DESIGN.md.
double vivadoEquivalentSeconds(const circuit::Netlist& netlist);

/// Formats a duration in seconds as the paper does (h / days).
double secondsToDays(double seconds);
double secondsToHours(double seconds);

}  // namespace axf::synth
