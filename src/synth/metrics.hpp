#pragma once

#include "src/util/bytes.hpp"

namespace axf::synth {

/// The three FPGA parameters the ApproxFPGAs ML models estimate, plus the
/// secondary quantities the Vivado reports of the paper expose.
struct FpgaReport {
    double lutCount = 0.0;    ///< area in 6-input LUTs (DSP blocks disabled)
    double sliceCount = 0.0;  ///< ~4 LUTs per slice, ceil
    double latencyNs = 0.0;   ///< critical path incl. routing
    double powerMw = 0.0;     ///< dynamic + static at the model frequency
    double logicDepth = 0.0;  ///< LUT levels on the critical path
    double synthSeconds = 0.0;  ///< Vivado-equivalent synthesis+P&R wall time

    /// Fixed-order binary encoding for the characterization cache.
    void serialize(util::ByteWriter& out) const {
        out.f64(lutCount);
        out.f64(sliceCount);
        out.f64(latencyNs);
        out.f64(powerMw);
        out.f64(logicDepth);
        out.f64(synthSeconds);
    }

    static bool deserialize(util::ByteReader& in, FpgaReport& out) {
        in.f64(out.lutCount);
        in.f64(out.sliceCount);
        in.f64(out.latencyNs);
        in.f64(out.powerMw);
        in.f64(out.logicDepth);
        in.f64(out.synthSeconds);
        return in.ok();
    }
};

/// ASIC-side reference metrics (the cheap, known quantities models ML1-ML3
/// regress against).
struct AsicReport {
    double areaUm2 = 0.0;
    double delayNs = 0.0;
    double powerMw = 0.0;
    double cellCount = 0.0;

    /// Fixed-order binary encoding for the characterization cache.
    void serialize(util::ByteWriter& out) const {
        out.f64(areaUm2);
        out.f64(delayNs);
        out.f64(powerMw);
        out.f64(cellCount);
    }

    static bool deserialize(util::ByteReader& in, AsicReport& out) {
        in.f64(out.areaUm2);
        in.f64(out.delayNs);
        in.f64(out.powerMw);
        in.f64(out.cellCount);
        return in.ok();
    }
};

}  // namespace axf::synth
