#pragma once

namespace axf::synth {

/// The three FPGA parameters the ApproxFPGAs ML models estimate, plus the
/// secondary quantities the Vivado reports of the paper expose.
struct FpgaReport {
    double lutCount = 0.0;    ///< area in 6-input LUTs (DSP blocks disabled)
    double sliceCount = 0.0;  ///< ~4 LUTs per slice, ceil
    double latencyNs = 0.0;   ///< critical path incl. routing
    double powerMw = 0.0;     ///< dynamic + static at the model frequency
    double logicDepth = 0.0;  ///< LUT levels on the critical path
    double synthSeconds = 0.0;  ///< Vivado-equivalent synthesis+P&R wall time
};

/// ASIC-side reference metrics (the cheap, known quantities models ML1-ML3
/// regress against).
struct AsicReport {
    double areaUm2 = 0.0;
    double delayNs = 0.0;
    double powerMw = 0.0;
    double cellCount = 0.0;
};

}  // namespace axf::synth
