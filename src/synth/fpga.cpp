#include "src/synth/fpga.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "src/circuit/simulator.hpp"
#include "src/circuit/transform.hpp"
#include "src/synth/synth_time.hpp"
#include "src/util/rng.hpp"

namespace axf::synth {

using circuit::Netlist;
using circuit::NodeId;

LutMapper::Mapping FpgaFlow::technologyMap(const Netlist& netlist) const {
    const Netlist optimized =
        circuit::simplify(circuit::lowerToTwoInput(circuit::simplify(netlist)));
    return LutMapper(options_.mapper).map(optimized);
}

FpgaReport FpgaFlow::implement(const Netlist& netlist) const {
    // --- synthesis: optimize, lower, map ----------------------------------
    const Netlist optimized =
        circuit::simplify(circuit::lowerToTwoInput(circuit::simplify(netlist)));
    const LutMapper::Mapping mapping = LutMapper(options_.mapper).map(optimized);

    FpgaReport report;
    report.lutCount = static_cast<double>(mapping.lutCount());
    report.sliceCount = std::ceil(report.lutCount / 4.0);
    report.logicDepth = mapping.depth;
    // Tool time scales with the RTL the user hands to Vivado, not with the
    // internally lowered form (keeps accounting comparable to the
    // exhaustive-exploration baseline, which also sees the input netlist).
    report.synthSeconds = vivadoEquivalentSeconds(netlist);

    // Placement jitter stream: deterministic per circuit *and* flow seed,
    // uncorrelated with the structural features the estimators see.
    util::Rng jitter(optimized.structuralHash() ^ options_.seed);

    // --- net fan-outs in the mapped network --------------------------------
    std::unordered_map<NodeId, int> netFanout;
    for (const LutMapper::Lut& lut : mapping.luts)
        for (NodeId leaf : lut.leaves) ++netFanout[leaf];
    for (NodeId out : optimized.outputs()) ++netFanout[out];

    const auto netDelay = [&](NodeId driver) {
        const auto it = netFanout.find(driver);
        const int fo = it == netFanout.end() ? 1 : it->second;
        const double base = options_.netDelayBaseNs +
                            options_.netDelayFanoutNs * std::log2(1.0 + static_cast<double>(fo));
        return base;
    };

    // --- timing: arrival-time propagation over the LUT network -------------
    std::vector<double> arrival(optimized.nodeCount(), 0.0);
    for (const LutMapper::Lut& lut : mapping.luts) {
        double worst = 0.0;
        for (NodeId leaf : lut.leaves)
            worst = std::max(worst, arrival[leaf] + netDelay(leaf));
        arrival[lut.root] = worst + options_.lutDelayNs +
                            jitter.uniformReal(0.0, options_.routingJitterNs);
    }
    for (NodeId out : optimized.outputs())
        report.latencyNs = std::max(report.latencyNs, arrival[out] + options_.ioDelayNs);
    if (mapping.luts.empty()) report.latencyNs = options_.ioDelayNs;

    // --- power: switching activity of the LUT output nets ------------------
    // Chunk-deterministic and thread-parallel (per-chunk counters merged in
    // block order): identical rates at any worker count, and safe when
    // `implement` itself runs inside a parallel library build (nested
    // parallelFor degrades to inline execution).
    const std::vector<double> toggles =
        circuit::estimateToggleRates(optimized, options_.activitySeed, options_.activityBlocks);

    double dynamicMw = 0.0;
    for (const LutMapper::Lut& lut : mapping.luts) {
        const auto it = netFanout.find(lut.root);
        const int fo = it == netFanout.end() ? 1 : it->second;
        const double cap = options_.lutCapFf + options_.wireCapFf * static_cast<double>(fo);
        // alpha * C[fF] * f[MHz] * V^2 -> nW; 1e-5 folds the fF/MHz unit
        // conversion and the fabric's effective voltage into mW.
        dynamicMw += toggles[lut.root] * cap * options_.clockMhz * 1e-5;
    }
    const double staticMw = report.lutCount * options_.staticPowerPerLutUw * 1e-3;
    const double powerNoise =
        1.0 + jitter.uniformReal(-options_.powerJitterFraction, options_.powerJitterFraction);
    report.powerMw = (dynamicMw + staticMw) * powerNoise;
    return report;
}

}  // namespace axf::synth
