#include "src/synth/asic.hpp"

#include <algorithm>
#include <vector>

#include "src/circuit/simulator.hpp"
#include "src/circuit/transform.hpp"
#include "src/util/rng.hpp"

namespace axf::synth {

using circuit::GateKind;
using circuit::Netlist;

const CellSpec& AsicFlow::cellSpec(GateKind kind) {
    // Normalized 45nm-class library.  XOR family is area/delay expensive in
    // CMOS (transmission-gate structures), NAND/NOR cheap — exactly the
    // asymmetry that makes ASIC Pareto fronts differ from LUT fabrics where
    // any 6-input function costs one LUT.
    static const CellSpec kInverter{0.53, 0.020, 0.004, 1.0};
    static const CellSpec kBuffer{0.80, 0.030, 0.003, 1.2};
    static const CellSpec kNand{0.80, 0.028, 0.006, 1.5};
    static const CellSpec kNor{0.80, 0.032, 0.007, 1.5};
    static const CellSpec kAnd{1.06, 0.045, 0.006, 1.8};
    static const CellSpec kOr{1.06, 0.049, 0.007, 1.8};
    static const CellSpec kXor{1.60, 0.072, 0.009, 2.6};
    static const CellSpec kXnor{1.60, 0.070, 0.009, 2.6};
    static const CellSpec kAndNot{1.06, 0.047, 0.006, 1.8};
    static const CellSpec kOrNot{1.06, 0.050, 0.007, 1.8};
    static const CellSpec kMux{1.86, 0.062, 0.008, 2.9};
    static const CellSpec kMaj{2.13, 0.078, 0.009, 3.2};
    static const CellSpec kFree{0.0, 0.0, 0.0, 0.0};

    switch (kind) {
        case GateKind::Not: return kInverter;
        case GateKind::Buf: return kBuffer;
        case GateKind::Nand: return kNand;
        case GateKind::Nor: return kNor;
        case GateKind::And: return kAnd;
        case GateKind::Or: return kOr;
        case GateKind::Xor: return kXor;
        case GateKind::Xnor: return kXnor;
        case GateKind::AndNot: return kAndNot;
        case GateKind::OrNot: return kOrNot;
        case GateKind::Mux: return kMux;
        case GateKind::Maj: return kMaj;
        default: return kFree;  // inputs/constants bind to no cell
    }
}

AsicReport AsicFlow::synthesize(const Netlist& raw) const {
    const Netlist netlist = circuit::simplify(raw);
    AsicReport report;

    const std::vector<int> fanout = netlist.fanouts();

    // --- area & static timing -------------------------------------------
    std::vector<double> arrival(netlist.nodeCount(), 0.0);
    for (std::size_t i = 0; i < netlist.nodeCount(); ++i) {
        const circuit::Node& n = netlist.node(static_cast<circuit::NodeId>(i));
        const CellSpec& cell = cellSpec(n.kind);
        const int arity = circuit::fanInCount(n.kind);
        if (arity == 0) {
            arrival[i] = 0.0;
            continue;
        }
        report.areaUm2 += cell.areaUm2;
        report.cellCount += 1.0;
        double in = arrival[n.a];
        if (arity >= 2) in = std::max(in, arrival[n.b]);
        if (arity >= 3) in = std::max(in, arrival[n.c]);
        arrival[i] = in + cell.delayNs + cell.loadDelayNs * static_cast<double>(fanout[i]);
    }
    for (circuit::NodeId out : netlist.outputs())
        report.delayNs = std::max(report.delayNs, arrival[out]);

    // --- switching-activity power ----------------------------------------
    // Same chunk-deterministic parallel estimation as the FPGA flow: fixed
    // transition chunks, per-chunk counters, ordered merge.
    const std::vector<double> toggles =
        circuit::estimateToggleRates(netlist, options_.activitySeed, options_.activityBlocks);

    // P_dyn ~ sum(alpha_i * C_i) * f * V^2; constants folded into the cap
    // scale so an exact 8x8 multiplier lands in the ~0.1-1 mW regime.
    const double vddSquared = 1.0;  // 1.0 V
    double dynamicMw = 0.0;
    for (std::size_t i = 0; i < netlist.nodeCount(); ++i) {
        const circuit::Node& n = netlist.node(static_cast<circuit::NodeId>(i));
        if (circuit::fanInCount(n.kind) == 0) continue;
        const CellSpec& cell = cellSpec(n.kind);
        const double loadCap = cell.capFf + 0.35 * static_cast<double>(fanout[i]);
        dynamicMw += toggles[i] * loadCap * options_.clockMhz * vddSquared * 1e-5;
    }
    report.powerMw =
        dynamicMw + report.cellCount * options_.staticPowerPerCellUw * 1e-3;
    return report;
}

}  // namespace axf::synth
