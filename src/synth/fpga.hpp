#pragma once

#include <cstdint>

#include "src/circuit/netlist.hpp"
#include "src/synth/lutmap.hpp"
#include "src/synth/metrics.hpp"

namespace axf::synth {

/// FPGA implementation-flow model standing in for Vivado synth + place &
/// route on the xc7vx485t with DSP blocks disabled (everything maps to
/// LUT fabric).  The flow is: logic optimization -> two-input lowering ->
/// K-LUT technology mapping -> net-delay timing -> activity-based power.
///
/// Placement/routing effects the mapper cannot see are modeled as a
/// deterministic per-circuit jitter (seeded by the netlist's structural
/// hash), which is what bounds estimator fidelity below 100% exactly as
/// the paper observes for Vivado results.
class FpgaFlow {
public:
    struct Options {
        LutMapper::Options mapper{};
        double lutDelayNs = 0.124;     ///< 6-LUT intrinsic delay (Virtex-7 class)
        double netDelayBaseNs = 0.45;  ///< routed-net base delay
        double netDelayFanoutNs = 0.22;  ///< extra per log2(1+fanout)
        double ioDelayNs = 0.60;       ///< IOB + entry/exit routing
        double routingJitterNs = 0.35;  ///< max per-LUT placement jitter
        double clockMhz = 200.0;
        double lutCapFf = 6.0;         ///< switched cap per LUT output
        double wireCapFf = 8.0;        ///< routed-wire cap per fan-out (dominant)
        double staticPowerPerLutUw = 1.9;
        double powerJitterFraction = 0.06;  ///< +/- fraction on total power
        int activityBlocks = 24;
        std::uint64_t seed = 0xF96A;   ///< flow seed (mixed with circuit hash)
        /// Stimulus seed of the switching-activity estimation (symmetric
        /// with `AsicFlow::Options::activitySeed`); the default reproduces
        /// the historical hardwired stream.
        std::uint64_t activitySeed = 0xAC7DE;
    };

    FpgaFlow() = default;
    explicit FpgaFlow(Options options) : options_(options) {}

    /// Runs the full implementation flow and reports the paper's three
    /// FPGA parameters (plus depth/slices and modeled synthesis time).
    FpgaReport implement(const circuit::Netlist& netlist) const;

    /// The mapped LUT network alone (exposed for tests and inspection).
    LutMapper::Mapping technologyMap(const circuit::Netlist& netlist) const;

    const Options& options() const { return options_; }

private:
    Options options_{};
};

}  // namespace axf::synth
