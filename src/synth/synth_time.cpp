#include "src/synth/synth_time.hpp"

#include <cmath>

namespace axf::synth {

double vivadoEquivalentSeconds(const circuit::Netlist& netlist) {
    // Calibration: tool start-up/reporting floor of ~45 s, plus per-gate
    // synthesis effort and a mildly super-linear P&R term.  An 8x8
    // multiplier (~250 gates) lands near the ~115 s/circuit the paper
    // implies; a 16x16 multiplier (~1,500 gates) near ~10 minutes.
    const double gates = static_cast<double>(netlist.gateCount());
    return 45.0 + 0.28 * gates + 0.00011 * gates * gates;
}

double secondsToDays(double seconds) { return seconds / 86400.0; }
double secondsToHours(double seconds) { return seconds / 3600.0; }

}  // namespace axf::synth
