#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/ml/regressor.hpp"

namespace axf::ml {

/// Feature-vector positions of the known ASIC metrics (appended to the
/// structural features by the core layer); models ML1-ML3 regress against
/// exactly one of these columns.
struct AsicColumns {
    std::size_t area = 0;
    std::size_t delay = 0;
    std::size_t power = 0;
};

/// One Table-I entry: stable id ("ML11"), human-readable name, and a
/// factory producing a fresh untrained model.
struct ModelSpec {
    std::string id;
    std::string name;
    std::function<RegressorPtr()> make;
};

/// The 18 statistical/ML models of Table I, in paper order ML1..ML18.
std::vector<ModelSpec> tableOneModels(const AsicColumns& asic);

/// Lookup by id; throws std::out_of_range for unknown ids.
const ModelSpec& findModel(const std::vector<ModelSpec>& specs, const std::string& id);

}  // namespace axf::ml
