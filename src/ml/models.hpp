#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ml/regressor.hpp"
#include "src/util/rng.hpp"

namespace axf::ml {

// ---------------------------------------------------------------------------
// Linear family
// ---------------------------------------------------------------------------

/// Ridge regression (ML14) in closed form over an intercept-augmented
/// design matrix; alpha -> 0 degenerates to ordinary least squares.
class RidgeRegression : public Regressor {
public:
    explicit RidgeRegression(double alpha = 1.0) : alpha_(alpha) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

    const Vector& weights() const { return weights_; }  ///< last entry = bias

private:
    double alpha_;
    Vector weights_;
};

/// ML1-ML3: ordinary regression of the FPGA parameter against a *single*
/// known ASIC metric column (power/latency/area) of the feature vector.
class SingleFeatureRegression final : public Regressor {
public:
    explicit SingleFeatureRegression(std::size_t column) : column_(column) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    std::size_t column_;
    double intercept_ = 0.0;
    double slope_ = 0.0;
};

/// Bayesian ridge regression (ML11): evidence-approximation iteration over
/// the noise precision alpha and weight precision lambda (sklearn-style).
class BayesianRidge final : public Regressor {
public:
    explicit BayesianRidge(int iterations = 30) : iterations_(iterations) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    int iterations_;
    Vector weights_;
    double bias_ = 0.0;
};

/// Lasso (ML12): L1-regularized least squares by cyclic coordinate descent
/// on centered data.
class LassoRegression final : public Regressor {
public:
    explicit LassoRegression(double alpha = 0.01, int iterations = 400)
        : alpha_(alpha), iterations_(iterations) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    double alpha_;
    int iterations_;
    Vector weights_;
    double bias_ = 0.0;
};

/// Least-angle regression (ML13): the classic equiangular-direction path,
/// stopped after `maxActive` predictors (full OLS when unrestricted).
class LarsRegression final : public Regressor {
public:
    explicit LarsRegression(int maxActive = 0) : maxActive_(maxActive) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    int maxActive_;
    Vector weights_;
    double bias_ = 0.0;
    Vector mean_;
};

/// Linear model trained by stochastic gradient descent (ML15) with an
/// inverse-scaling learning-rate schedule.  Expects standardized features
/// (the registry wraps it in ScaledRegressor).
class SgdRegressor final : public Regressor {
public:
    SgdRegressor(int epochs = 120, double eta0 = 0.02, double l2 = 1e-4,
                 std::uint64_t seed = 15)
        : epochs_(epochs), eta0_(eta0), l2_(l2), seed_(seed) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    int epochs_;
    double eta0_;
    double l2_;
    std::uint64_t seed_;
    Vector weights_;
    double bias_ = 0.0;
};

/// Partial least squares PLS1 (ML4) via NIPALS with deflation.
class PlsRegression final : public Regressor {
public:
    explicit PlsRegression(int components = 4) : components_(components) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    int components_;
    Vector weights_;  ///< collapsed to an equivalent linear model
    double bias_ = 0.0;
};

// ---------------------------------------------------------------------------
// Kernel family
// ---------------------------------------------------------------------------

/// Kernel ridge regression (ML10) with an RBF kernel; the length scale
/// defaults to the median pairwise distance heuristic.
class KernelRidge : public Regressor {
public:
    explicit KernelRidge(double alpha = 0.08, double gamma = 0.0)
        : alpha_(alpha), gamma_(gamma) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

protected:
    double alpha_;
    double gamma_;  ///< 0 = median heuristic
    Matrix trainX_;
    Vector dual_;
    double yMean_ = 0.0;
    double gammaUsed_ = 1.0;
};

/// Gaussian-process regression (ML8): RBF kernel, white-noise term; the
/// posterior mean shares its algebra with kernel ridge, and the posterior
/// variance is exposed for inspection.
class GaussianProcess final : public KernelRidge {
public:
    explicit GaussianProcess(double noise = 0.05, double gamma = 0.0)
        : KernelRidge(noise, gamma) {}

    /// Posterior predictive variance at x (requires fit()).
    double predictVariance(std::span<const double> x) const;
};

// ---------------------------------------------------------------------------
// Instance / tree / ensemble family
// ---------------------------------------------------------------------------

/// Distance-weighted k-nearest-neighbour regression (ML16).
class KnnRegressor final : public Regressor {
public:
    explicit KnnRegressor(int k = 5) : k_(k) {}
    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    int k_;
    Matrix trainX_;
    Vector trainY_;
};

/// CART regression tree (ML18): variance-reduction splits, depth and
/// minimum-leaf bounds, optional per-split feature subsampling (used by
/// the forest).
class DecisionTree final : public Regressor {
public:
    struct Params {
        int maxDepth = 10;
        int minSamplesLeaf = 2;
        int featuresPerSplit = 0;  ///< 0 = all features
        std::uint64_t seed = 18;
    };

    DecisionTree() = default;
    explicit DecisionTree(Params params) : params_(params) {}

    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

    /// Fits on a row subset (bootstrap support for ensembles).
    void fitSubset(const Matrix& x, const Vector& y, const std::vector<std::size_t>& rows);

private:
    struct Node {
        int feature = -1;  ///< -1 = leaf
        double threshold = 0.0;
        double value = 0.0;
        int left = -1;
        int right = -1;
    };
    Params params_{};
    std::vector<Node> nodes_;

    int build(const Matrix& x, const Vector& y, std::vector<std::size_t>& rows, int depth,
              util::Rng& rng);
};

/// Bagged forest of decision trees (ML5).
class RandomForest final : public Regressor {
public:
    struct Params {
        int trees = 40;
        DecisionTree::Params tree{};
        std::uint64_t seed = 5;
    };
    RandomForest() = default;
    explicit RandomForest(Params params) : params_(params) {}

    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    Params params_{};
    std::vector<DecisionTree> trees_;
};

/// Least-squares gradient boosting over shallow trees (ML6).
class GradientBoosting final : public Regressor {
public:
    struct Params {
        int stages = 120;
        double learningRate = 0.08;
        int maxDepth = 3;
        std::uint64_t seed = 6;
    };
    GradientBoosting() = default;
    explicit GradientBoosting(Params params) : params_(params) {}

    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    Params params_{};
    double base_ = 0.0;
    std::vector<DecisionTree> stages_;
};

/// AdaBoost.R2 (ML7, Drucker 1997): weighted resampling of weak tree
/// learners with weighted-median aggregation.
class AdaBoostR2 final : public Regressor {
public:
    struct Params {
        int stages = 40;
        int maxDepth = 4;
        std::uint64_t seed = 7;
    };
    AdaBoostR2() = default;
    explicit AdaBoostR2(Params params) : params_(params) {}

    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    Params params_{};
    std::vector<DecisionTree> stages_;
    Vector stageWeights_;  ///< ln(1/beta)
};

// ---------------------------------------------------------------------------
// Neural / symbolic
// ---------------------------------------------------------------------------

/// One-hidden-layer multi-layer perceptron (ML17): tanh units trained with
/// Adam on standardized features and a normalized target.
class MlpRegressor final : public Regressor {
public:
    struct Params {
        int hidden = 16;
        int epochs = 400;
        double learningRate = 0.01;
        std::uint64_t seed = 17;
    };
    MlpRegressor() = default;
    explicit MlpRegressor(Params params) : params_(params) {}

    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

private:
    Params params_{};
    Matrix w1_;   // hidden x d
    Vector b1_;
    Vector w2_;   // hidden
    double b2_ = 0.0;
    double yMean_ = 0.0;
    double yScale_ = 1.0;
};

/// Symbolic regression (ML9): genetic programming over arithmetic
/// expression trees with linear output scaling.
class SymbolicRegression final : public Regressor {
public:
    struct Params {
        int population = 96;
        int generations = 28;
        int maxDepth = 5;
        int tournament = 4;
        std::uint64_t seed = 9;
    };
    SymbolicRegression();
    explicit SymbolicRegression(Params params);
    ~SymbolicRegression() override;
    SymbolicRegression(SymbolicRegression&&) noexcept;
    SymbolicRegression& operator=(SymbolicRegression&&) noexcept;

    void fit(const Matrix& x, const Vector& y) override;
    double predict(std::span<const double> x) const override;

    /// Printable form of the evolved expression (after fit()).
    std::string expression() const;

private:
    struct Impl;
    Params params_{};
    std::unique_ptr<Impl> impl_;
};

}  // namespace axf::ml
