#include "src/ml/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace axf::ml {

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
    return m;
}

Matrix Matrix::fromRows(const std::vector<Vector>& rows) {
    if (rows.empty()) return {};
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].size() != m.cols())
            throw std::invalid_argument("Matrix::fromRows: ragged rows");
        for (std::size_t c = 0; c < m.cols(); ++c) m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
    return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::operator*: shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double v = at(i, k);
            if (v == 0.0) continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j) out.at(i, j) += v * rhs.at(k, j);
        }
    }
    return out;
}

Vector Matrix::operator*(const Vector& v) const {
    if (cols_ != v.size()) throw std::invalid_argument("Matrix::operator*: vector size mismatch");
    Vector out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), v);
    return out;
}

Matrix Matrix::gram() const {
    Matrix g(cols_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::span<const double> x = row(r);
        for (std::size_t i = 0; i < cols_; ++i) {
            if (x[i] == 0.0) continue;
            for (std::size_t j = i; j < cols_; ++j) g.at(i, j) += x[i] * x[j];
        }
    }
    for (std::size_t i = 0; i < cols_; ++i)
        for (std::size_t j = 0; j < i; ++j) g.at(i, j) = g.at(j, i);
    return g;
}

Vector Matrix::transposeTimes(const Vector& v) const {
    if (rows_ != v.size())
        throw std::invalid_argument("Matrix::transposeTimes: vector size mismatch");
    Vector out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        if (v[r] == 0.0) continue;
        const std::span<const double> x = row(r);
        for (std::size_t c = 0; c < cols_; ++c) out[c] += x[c] * v[r];
    }
    return out;
}

Vector solveSpd(Matrix a, Vector b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n) throw std::invalid_argument("solveSpd: shape mismatch");
    // In-place Cholesky a = L L^T (lower triangle).
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a.at(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l.at(j, k) * l.at(j, k);
        if (diag <= 0.0) return solveLinear(std::move(a), std::move(b));  // not SPD
        l.at(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k) v -= l.at(i, k) * l.at(j, k);
            l.at(i, j) = v / l.at(j, j);
        }
    }
    // Forward substitution L y = b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = b[i];
        for (std::size_t k = 0; k < i; ++k) v -= l.at(i, k) * y[k];
        y[i] = v / l.at(i, i);
    }
    // Backward substitution L^T x = y.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) v -= l.at(k, ii) * x[k];
        x[ii] = v / l.at(ii, ii);
    }
    return x;
}

Vector solveLinear(Matrix a, Vector b) {
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n) throw std::invalid_argument("solveLinear: shape mismatch");
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
        if (std::abs(a.at(pivot, col)) < 1e-12)
            throw std::runtime_error("solveLinear: singular system");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
            std::swap(b[pivot], b[col]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a.at(r, col) / a.at(col, col);
            if (f == 0.0) continue;
            for (std::size_t c = col; c < n; ++c) a.at(r, c) -= f * a.at(col, c);
            b[r] -= f * b[col];
        }
    }
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double v = b[ii];
        for (std::size_t c = ii + 1; c < n; ++c) v -= a.at(ii, c) * x[c];
        x[ii] = v / a.at(ii, ii);
    }
    return x;
}

double dot(std::span<const double> a, std::span<const double> b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double squaredDistance(std::span<const double> a, std::span<const double> b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

}  // namespace axf::ml
