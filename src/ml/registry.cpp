#include "src/ml/registry.hpp"

#include <memory>
#include <stdexcept>

#include "src/ml/models.hpp"

namespace axf::ml {

namespace {

RegressorPtr scaled(RegressorPtr inner) {
    return std::make_unique<ScaledRegressor>(std::move(inner));
}

}  // namespace

std::vector<ModelSpec> tableOneModels(const AsicColumns& asic) {
    std::vector<ModelSpec> specs;
    specs.push_back({"ML1", "Regression w.r.t ASIC-AC Power", [asic] {
                         return RegressorPtr(std::make_unique<SingleFeatureRegression>(asic.power));
                     }});
    specs.push_back({"ML2", "Regression w.r.t ASIC-AC Latency", [asic] {
                         return RegressorPtr(std::make_unique<SingleFeatureRegression>(asic.delay));
                     }});
    specs.push_back({"ML3", "Regression w.r.t ASIC-AC Area", [asic] {
                         return RegressorPtr(std::make_unique<SingleFeatureRegression>(asic.area));
                     }});
    specs.push_back({"ML4", "PLS Regression", [] {
                         return scaled(std::make_unique<PlsRegression>(4));
                     }});
    specs.push_back({"ML5", "Random Forest", [] {
                         return RegressorPtr(std::make_unique<RandomForest>());
                     }});
    specs.push_back({"ML6", "Gradient Boosting", [] {
                         return RegressorPtr(std::make_unique<GradientBoosting>());
                     }});
    specs.push_back({"ML7", "Adaptive Boosting (AdaBoost)", [] {
                         return RegressorPtr(std::make_unique<AdaBoostR2>());
                     }});
    specs.push_back({"ML8", "Gaussian Process", [] {
                         return scaled(std::make_unique<GaussianProcess>());
                     }});
    specs.push_back({"ML9", "Symbolic Regression", [] {
                         return scaled(std::make_unique<SymbolicRegression>());
                     }});
    specs.push_back({"ML10", "Kernel Ridge", [] {
                         return scaled(std::make_unique<KernelRidge>());
                     }});
    specs.push_back({"ML11", "Bayesian Ridge", [] {
                         return scaled(std::make_unique<BayesianRidge>());
                     }});
    specs.push_back({"ML12", "Coordinate Descent (Lasso)", [] {
                         return scaled(std::make_unique<LassoRegression>());
                     }});
    specs.push_back({"ML13", "Least Angle Regression", [] {
                         return scaled(std::make_unique<LarsRegression>());
                     }});
    specs.push_back({"ML14", "Ridge Regression", [] {
                         return scaled(std::make_unique<RidgeRegression>(1.0));
                     }});
    specs.push_back({"ML15", "Stochastic Gradient Descent", [] {
                         return scaled(std::make_unique<SgdRegressor>());
                     }});
    specs.push_back({"ML16", "K-Nearest Neighbours", [] {
                         return scaled(std::make_unique<KnnRegressor>(5));
                     }});
    specs.push_back({"ML17", "Multi-Layer Perceptron (MLP)", [] {
                         return scaled(std::make_unique<MlpRegressor>());
                     }});
    specs.push_back({"ML18", "Decision Tree", [] {
                         return RegressorPtr(std::make_unique<DecisionTree>());
                     }});
    return specs;
}

const ModelSpec& findModel(const std::vector<ModelSpec>& specs, const std::string& id) {
    for (const ModelSpec& spec : specs)
        if (spec.id == id) return spec;
    throw std::out_of_range("findModel: unknown model id " + id);
}

}  // namespace axf::ml
