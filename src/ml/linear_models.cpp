#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/ml/models.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace axf::ml {

namespace {

/// Appends a constant-1 bias column.
Matrix withBias(const Matrix& x) {
    Matrix out(x.rows(), x.cols() + 1);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) out.at(r, c) = x.at(r, c);
        out.at(r, x.cols()) = 1.0;
    }
    return out;
}

Vector columnMeans(const Matrix& x) {
    Vector mean(x.cols(), 0.0);
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c) mean[c] += x.at(r, c);
    for (double& m : mean) m /= static_cast<double>(std::max<std::size_t>(1, x.rows()));
    return mean;
}

}  // namespace

// --- RidgeRegression --------------------------------------------------------

void RidgeRegression::fit(const Matrix& x, const Vector& y) {
    const Matrix xb = withBias(x);
    Matrix gram = xb.gram();
    for (std::size_t i = 0; i + 1 < gram.rows(); ++i) gram.at(i, i) += alpha_;
    gram.at(gram.rows() - 1, gram.rows() - 1) += 1e-9;  // unpenalized bias, keep SPD
    weights_ = solveSpd(std::move(gram), xb.transposeTimes(y));
}

double RidgeRegression::predict(std::span<const double> x) const {
    double acc = weights_.back();
    for (std::size_t c = 0; c < x.size(); ++c) acc += weights_[c] * x[c];
    return acc;
}

// --- SingleFeatureRegression -------------------------------------------------

void SingleFeatureRegression::fit(const Matrix& x, const Vector& y) {
    Vector col(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) col[r] = x.at(r, column_);
    const util::LinearFit f = util::fitLine(col, y);
    intercept_ = f.intercept;
    slope_ = f.slope;
}

double SingleFeatureRegression::predict(std::span<const double> x) const {
    return intercept_ + slope_ * x[column_];
}

// --- BayesianRidge -----------------------------------------------------------

void BayesianRidge::fit(const Matrix& x, const Vector& y) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    // Center target; work on raw features (registry standardizes them).
    const double ymean = util::mean(y);
    Vector yc(n);
    for (std::size_t i = 0; i < n; ++i) yc[i] = y[i] - ymean;

    const Matrix gram = x.gram();
    const Vector xty = x.transposeTimes(yc);

    double alpha = 1.0 / std::max(1e-9, util::variance(y));  // noise precision
    double lambda = 1.0;                                     // weight precision
    Vector w(d, 0.0);
    for (int it = 0; it < iterations_; ++it) {
        Matrix a(d, d);
        for (std::size_t i = 0; i < d; ++i)
            for (std::size_t j = 0; j < d; ++j)
                a.at(i, j) = alpha * gram.at(i, j) + (i == j ? lambda : 0.0);
        Vector rhs(d);
        for (std::size_t i = 0; i < d; ++i) rhs[i] = alpha * xty[i];
        w = solveSpd(a, rhs);

        // gamma = effective number of parameters ~ d - lambda * tr(A^-1).
        // Estimate tr(A^-1) by solving for the unit vectors (d is small).
        double trace = 0.0;
        for (std::size_t i = 0; i < d; ++i) {
            Vector e(d, 0.0);
            e[i] = 1.0;
            const Vector col = solveSpd(a, e);
            trace += col[i];
        }
        const double gamma = static_cast<double>(d) - lambda * trace;

        double sse = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            const double resid = yc[r] - dot(x.row(r), w);
            sse += resid * resid;
        }
        lambda = (gamma + 1e-6) / (dot(w, w) + 1e-6);
        alpha = (static_cast<double>(n) - gamma + 1e-6) / (sse + 1e-6);
    }
    weights_ = std::move(w);
    bias_ = ymean;
}

double BayesianRidge::predict(std::span<const double> x) const {
    return bias_ + dot(x, weights_);
}

// --- LassoRegression ---------------------------------------------------------

void LassoRegression::fit(const Matrix& x, const Vector& y) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    const Vector xmean = columnMeans(x);
    const double ymean = util::mean(y);

    // Precompute centered columns and their squared norms.
    std::vector<Vector> col(d, Vector(n));
    Vector colSq(d, 0.0);
    for (std::size_t c = 0; c < d; ++c) {
        for (std::size_t r = 0; r < n; ++r) {
            col[c][r] = x.at(r, c) - xmean[c];
            colSq[c] += col[c][r] * col[c][r];
        }
    }
    Vector residual(n);
    for (std::size_t r = 0; r < n; ++r) residual[r] = y[r] - ymean;

    weights_.assign(d, 0.0);
    const double threshold = alpha_ * static_cast<double>(n);
    for (int it = 0; it < iterations_; ++it) {
        double maxDelta = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
            if (colSq[c] < 1e-12) continue;
            // rho = x_c . (residual + w_c x_c)
            double rho = dot(col[c], residual) + weights_[c] * colSq[c];
            double wNew = 0.0;
            if (rho > threshold)
                wNew = (rho - threshold) / colSq[c];
            else if (rho < -threshold)
                wNew = (rho + threshold) / colSq[c];
            const double delta = wNew - weights_[c];
            if (delta != 0.0) {
                for (std::size_t r = 0; r < n; ++r) residual[r] -= delta * col[c][r];
                weights_[c] = wNew;
                maxDelta = std::max(maxDelta, std::abs(delta));
            }
        }
        if (maxDelta < 1e-10) break;
    }
    bias_ = ymean;
    for (std::size_t c = 0; c < d; ++c) bias_ -= weights_[c] * xmean[c];
}

double LassoRegression::predict(std::span<const double> x) const {
    return bias_ + dot(x, weights_);
}

// --- LarsRegression ----------------------------------------------------------

void LarsRegression::fit(const Matrix& x, const Vector& y) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    mean_ = columnMeans(x);
    const double ymean = util::mean(y);

    // Centered, column-normalized design (LARS convention).
    std::vector<Vector> col(d, Vector(n));
    Vector norm(d, 1.0);
    for (std::size_t c = 0; c < d; ++c) {
        double sq = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            col[c][r] = x.at(r, c) - mean_[c];
            sq += col[c][r] * col[c][r];
        }
        norm[c] = std::sqrt(std::max(sq, 1e-12));
        for (std::size_t r = 0; r < n; ++r) col[c][r] /= norm[c];
    }

    Vector mu(n, 0.0);  // current fit
    Vector beta(d, 0.0);
    std::vector<std::size_t> active;
    std::vector<bool> inActive(d, false);
    const int limit =
        maxActive_ > 0 ? std::min<int>(maxActive_, static_cast<int>(d)) : static_cast<int>(d);

    for (int step = 0; step < limit; ++step) {
        // Correlations with the residual.
        Vector corr(d, 0.0);
        double cmax = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
            double acc = 0.0;
            for (std::size_t r = 0; r < n; ++r) acc += col[c][r] * (y[r] - ymean - mu[r]);
            corr[c] = acc;
            if (!inActive[c]) cmax = std::max(cmax, std::abs(acc));
        }
        if (cmax < 1e-10) break;
        for (std::size_t c = 0; c < d; ++c) {
            if (!inActive[c] && std::abs(std::abs(corr[c]) - cmax) < 1e-9) {
                active.push_back(c);
                inActive[c] = true;
            }
        }

        // Equiangular direction over the active set.
        const std::size_t a = active.size();
        Matrix g(a, a);
        for (std::size_t i = 0; i < a; ++i)
            for (std::size_t j = 0; j < a; ++j) g.at(i, j) = dot(col[active[i]], col[active[j]]);
        Vector s(a);
        for (std::size_t i = 0; i < a; ++i) s[i] = corr[active[i]] >= 0.0 ? 1.0 : -1.0;
        Vector w;
        try {
            w = solveLinear(g, s);
        } catch (const std::exception&) {
            break;  // collinear active set: stop the path
        }
        const double aa = 1.0 / std::sqrt(std::max(1e-12, dot(w, s)));
        for (double& v : w) v *= aa;

        Vector u(n, 0.0);
        for (std::size_t i = 0; i < a; ++i)
            for (std::size_t r = 0; r < n; ++r) u[r] += col[active[i]][r] * w[i];

        // Step length to the next competitor entering the active set.
        double gammaStep = cmax / aa;
        if (a < d) {
            for (std::size_t c = 0; c < d; ++c) {
                if (inActive[c]) continue;
                const double ac = dot(col[c], u);
                for (const double denomSign : {1.0, -1.0}) {
                    const double denom = aa - denomSign * ac;
                    if (std::abs(denom) < 1e-12) continue;
                    const double g2 = (cmax - denomSign * corr[c]) / denom;
                    if (g2 > 1e-12) gammaStep = std::min(gammaStep, g2);
                }
            }
        }
        for (std::size_t r = 0; r < n; ++r) mu[r] += gammaStep * u[r];
        for (std::size_t i = 0; i < a; ++i) beta[active[i]] += gammaStep * w[i];
    }

    weights_.assign(d, 0.0);
    bias_ = ymean;
    for (std::size_t c = 0; c < d; ++c) {
        weights_[c] = beta[c] / norm[c];
        bias_ -= weights_[c] * mean_[c];
    }
}

double LarsRegression::predict(std::span<const double> x) const {
    return bias_ + dot(x, weights_);
}

// --- SgdRegressor ------------------------------------------------------------

void SgdRegressor::fit(const Matrix& x, const Vector& y) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    weights_.assign(d, 0.0);
    const double ymean = util::mean(y);
    bias_ = ymean;

    util::Rng rng(seed_);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    long step = 0;
    for (int epoch = 0; epoch < epochs_; ++epoch) {
        rng.shuffle(order);
        for (std::size_t idx : order) {
            const double eta = eta0_ / std::pow(1.0 + static_cast<double>(step) * 1e-3, 0.25);
            ++step;
            const double pred = bias_ + dot(x.row(idx), weights_);
            const double grad = pred - y[idx];
            for (std::size_t c = 0; c < d; ++c)
                weights_[c] -= eta * (grad * x.at(idx, c) + l2_ * weights_[c]);
            bias_ -= eta * grad;
        }
    }
}

double SgdRegressor::predict(std::span<const double> x) const {
    return bias_ + dot(x, weights_);
}

// --- PlsRegression -----------------------------------------------------------

void PlsRegression::fit(const Matrix& x, const Vector& y) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    const Vector xmean = columnMeans(x);
    const double ymean = util::mean(y);

    // Working (deflated) copies.
    Matrix e(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) e.at(r, c) = x.at(r, c) - xmean[c];
    Vector f(n);
    for (std::size_t r = 0; r < n; ++r) f[r] = y[r] - ymean;

    const int ncomp = std::min<int>(components_, static_cast<int>(d));
    std::vector<Vector> ws, ps;
    Vector qs;
    for (int comp = 0; comp < ncomp; ++comp) {
        // w = E^T f, normalized.
        Vector w = e.transposeTimes(f);
        const double wn = std::sqrt(std::max(1e-12, dot(w, w)));
        for (double& v : w) v /= wn;
        // t = E w.
        Vector t = e * w;
        const double tt = std::max(1e-12, dot(t, t));
        // p = E^T t / t^T t ; q = f^T t / t^T t.
        Vector p = e.transposeTimes(t);
        for (double& v : p) v /= tt;
        const double q = dot(f, t) / tt;
        // Deflate.
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < d; ++c) e.at(r, c) -= t[r] * p[c];
            f[r] -= q * t[r];
        }
        ws.push_back(std::move(w));
        ps.push_back(std::move(p));
        qs.push_back(q);
    }

    // Collapse to an equivalent linear model: B = W (P^T W)^-1 q.
    const std::size_t a = ws.size();
    weights_.assign(d, 0.0);
    if (a > 0) {
        Matrix ptw(a, a);
        for (std::size_t i = 0; i < a; ++i)
            for (std::size_t j = 0; j < a; ++j) ptw.at(i, j) = dot(ps[i], ws[j]);
        Vector r;
        try {
            r = solveLinear(ptw, qs);
        } catch (const std::exception&) {
            r.assign(a, 0.0);
            if (!qs.empty()) r[0] = qs[0];
        }
        for (std::size_t c = 0; c < d; ++c)
            for (std::size_t i = 0; i < a; ++i) weights_[c] += ws[i][c] * r[i];
    }
    bias_ = ymean;
    for (std::size_t c = 0; c < d; ++c) bias_ -= weights_[c] * xmean[c];
}

double PlsRegression::predict(std::span<const double> x) const {
    return bias_ + dot(x, weights_);
}

}  // namespace axf::ml
