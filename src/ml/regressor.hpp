#pragma once

#include <memory>
#include <span>
#include <string>

#include "src/ml/linalg.hpp"

namespace axf::ml {

/// Common interface of all Table-I statistical/ML models: fit on a feature
/// matrix (one row per circuit) and predict a scalar FPGA parameter.
class Regressor {
public:
    virtual ~Regressor() = default;

    virtual void fit(const Matrix& x, const Vector& y) = 0;
    virtual double predict(std::span<const double> x) const = 0;

    Vector predictAll(const Matrix& x) const {
        Vector out(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
        return out;
    }
};

using RegressorPtr = std::unique_ptr<Regressor>;

/// Feature standardization (zero mean, unit variance); constant columns
/// pass through unscaled.  Most Table-I models fit on standardized inputs.
class StandardScaler {
public:
    void fit(const Matrix& x);
    Matrix transform(const Matrix& x) const;
    Vector transform(std::span<const double> x) const;
    bool fitted() const { return !mean_.empty(); }

private:
    Vector mean_;
    Vector scale_;
};

/// Decorator running any regressor on standardized features.
class ScaledRegressor final : public Regressor {
public:
    explicit ScaledRegressor(RegressorPtr inner) : inner_(std::move(inner)) {}

    void fit(const Matrix& x, const Vector& y) override {
        scaler_.fit(x);
        inner_->fit(scaler_.transform(x), y);
    }
    double predict(std::span<const double> x) const override {
        const Vector z = scaler_.transform(x);
        return inner_->predict(z);
    }

private:
    StandardScaler scaler_;
    RegressorPtr inner_;
};

}  // namespace axf::ml
