#include <algorithm>
#include <numeric>

#include "src/ml/models.hpp"

namespace axf::ml {

namespace {

double subsetMean(const Vector& y, const std::vector<std::size_t>& rows) {
    double acc = 0.0;
    for (std::size_t r : rows) acc += y[r];
    return rows.empty() ? 0.0 : acc / static_cast<double>(rows.size());
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const Vector& y) {
    std::vector<std::size_t> rows(x.rows());
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    fitSubset(x, y, rows);
}

void DecisionTree::fitSubset(const Matrix& x, const Vector& y,
                             const std::vector<std::size_t>& rows) {
    nodes_.clear();
    std::vector<std::size_t> working = rows;
    util::Rng rng(params_.seed);
    build(x, y, working, 0, rng);
}

int DecisionTree::build(const Matrix& x, const Vector& y, std::vector<std::size_t>& rows,
                        int depth, util::Rng& rng) {
    const int nodeIndex = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[static_cast<std::size_t>(nodeIndex)].value = subsetMean(y, rows);

    if (depth >= params_.maxDepth ||
        rows.size() < 2 * static_cast<std::size_t>(params_.minSamplesLeaf))
        return nodeIndex;

    // Candidate features (optionally a random subset, for forests).
    const std::size_t d = x.cols();
    std::vector<std::size_t> features(d);
    std::iota(features.begin(), features.end(), std::size_t{0});
    if (params_.featuresPerSplit > 0 && static_cast<std::size_t>(params_.featuresPerSplit) < d) {
        rng.shuffle(features);
        features.resize(static_cast<std::size_t>(params_.featuresPerSplit));
    }

    // Best split = maximal weighted variance reduction, found by scanning
    // each feature in sorted order with running sums.
    double bestScore = 0.0;
    int bestFeature = -1;
    double bestThreshold = 0.0;

    double total = 0.0, totalSq = 0.0;
    for (std::size_t r : rows) {
        total += y[r];
        totalSq += y[r] * y[r];
    }
    const double n = static_cast<double>(rows.size());
    const double parentSse = totalSq - total * total / n;

    std::vector<std::pair<double, double>> points(rows.size());  // (x, y)
    for (std::size_t f : features) {
        for (std::size_t i = 0; i < rows.size(); ++i)
            points[i] = {x.at(rows[i], f), y[rows[i]]};
        std::sort(points.begin(), points.end());

        double leftSum = 0.0, leftSq = 0.0;
        for (std::size_t i = 0; i + 1 < points.size(); ++i) {
            leftSum += points[i].second;
            leftSq += points[i].second * points[i].second;
            if (points[i].first == points[i + 1].first) continue;  // no boundary
            const double nl = static_cast<double>(i + 1);
            const double nr = n - nl;
            if (nl < params_.minSamplesLeaf || nr < params_.minSamplesLeaf) continue;
            const double rightSum = total - leftSum;
            const double rightSq = totalSq - leftSq;
            const double sse = (leftSq - leftSum * leftSum / nl) +
                               (rightSq - rightSum * rightSum / nr);
            const double score = parentSse - sse;
            if (score > bestScore + 1e-12) {
                bestScore = score;
                bestFeature = static_cast<int>(f);
                bestThreshold = 0.5 * (points[i].first + points[i + 1].first);
            }
        }
    }
    if (bestFeature < 0) return nodeIndex;

    std::vector<std::size_t> left, right;
    for (std::size_t r : rows) {
        if (x.at(r, static_cast<std::size_t>(bestFeature)) <= bestThreshold)
            left.push_back(r);
        else
            right.push_back(r);
    }
    if (left.empty() || right.empty()) return nodeIndex;
    rows.clear();
    rows.shrink_to_fit();

    const int leftChild = build(x, y, left, depth + 1, rng);
    const int rightChild = build(x, y, right, depth + 1, rng);
    Node& node = nodes_[static_cast<std::size_t>(nodeIndex)];
    node.feature = bestFeature;
    node.threshold = bestThreshold;
    node.left = leftChild;
    node.right = rightChild;
    return nodeIndex;
}

double DecisionTree::predict(std::span<const double> x) const {
    if (nodes_.empty()) return 0.0;
    int idx = 0;
    while (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
        const Node& node = nodes_[static_cast<std::size_t>(idx)];
        idx = x[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left
                                                                          : node.right;
    }
    return nodes_[static_cast<std::size_t>(idx)].value;
}

}  // namespace axf::ml
