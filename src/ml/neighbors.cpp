#include <algorithm>
#include <cmath>
#include <vector>

#include "src/ml/models.hpp"

namespace axf::ml {

void KnnRegressor::fit(const Matrix& x, const Vector& y) {
    trainX_ = x;
    trainY_ = y;
}

double KnnRegressor::predict(std::span<const double> x) const {
    const std::size_t n = trainX_.rows();
    const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_), n);
    if (k == 0) return 0.0;

    std::vector<std::pair<double, std::size_t>> dist(n);
    for (std::size_t i = 0; i < n; ++i) dist[i] = {squaredDistance(trainX_.row(i), x), i};
    std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());

    // Inverse-distance weighting; an exact feature match dominates.
    double wsum = 0.0, acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        const double d = std::sqrt(dist[i].first);
        if (d < 1e-12) return trainY_[dist[i].second];
        const double w = 1.0 / d;
        wsum += w;
        acc += w * trainY_[dist[i].second];
    }
    return acc / wsum;
}

}  // namespace axf::ml
