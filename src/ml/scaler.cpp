#include <cmath>

#include "src/ml/regressor.hpp"

namespace axf::ml {

void StandardScaler::fit(const Matrix& x) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    mean_.assign(d, 0.0);
    scale_.assign(d, 1.0);
    if (n == 0) return;
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) mean_[c] += x.at(r, c);
    for (double& m : mean_) m /= static_cast<double>(n);
    Vector var(d, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c) {
            const double dlt = x.at(r, c) - mean_[c];
            var[c] += dlt * dlt;
        }
    for (std::size_t c = 0; c < d; ++c) {
        const double sd = std::sqrt(var[c] / static_cast<double>(n));
        scale_[c] = sd > 1e-12 ? sd : 1.0;
    }
}

Matrix StandardScaler::transform(const Matrix& x) const {
    Matrix out(x.rows(), x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            out.at(r, c) = (x.at(r, c) - mean_[c]) / scale_[c];
    return out;
}

Vector StandardScaler::transform(std::span<const double> x) const {
    Vector out(x.size());
    for (std::size_t c = 0; c < x.size(); ++c) out[c] = (x[c] - mean_[c]) / scale_[c];
    return out;
}

}  // namespace axf::ml
