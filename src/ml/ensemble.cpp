#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/ml/models.hpp"
#include "src/util/stats.hpp"

namespace axf::ml {

// --- RandomForest ------------------------------------------------------------

void RandomForest::fit(const Matrix& x, const Vector& y) {
    trees_.clear();
    util::Rng rng(params_.seed);
    const std::size_t n = x.rows();
    for (int t = 0; t < params_.trees; ++t) {
        DecisionTree::Params tp = params_.tree;
        if (tp.featuresPerSplit == 0)
            tp.featuresPerSplit = std::max(1, static_cast<int>(x.cols()) / 3);
        tp.seed = rng.uniformInt(0, UINT64_MAX);
        DecisionTree tree(tp);
        std::vector<std::size_t> bootstrap(n);
        for (std::size_t i = 0; i < n; ++i) bootstrap[i] = rng.index(n);
        tree.fitSubset(x, y, bootstrap);
        trees_.push_back(std::move(tree));
    }
}

double RandomForest::predict(std::span<const double> x) const {
    if (trees_.empty()) return 0.0;
    double acc = 0.0;
    for (const DecisionTree& tree : trees_) acc += tree.predict(x);
    return acc / static_cast<double>(trees_.size());
}

// --- GradientBoosting ---------------------------------------------------------

void GradientBoosting::fit(const Matrix& x, const Vector& y) {
    stages_.clear();
    base_ = util::mean(y);
    Vector residual(y.size());
    Vector current(y.size(), base_);
    util::Rng rng(params_.seed);
    for (int stage = 0; stage < params_.stages; ++stage) {
        for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - current[i];
        DecisionTree::Params tp;
        tp.maxDepth = params_.maxDepth;
        tp.minSamplesLeaf = 2;
        tp.seed = rng.uniformInt(0, UINT64_MAX);
        DecisionTree tree(tp);
        tree.fit(x, residual);
        for (std::size_t i = 0; i < y.size(); ++i)
            current[i] += params_.learningRate * tree.predict(x.row(i));
        stages_.push_back(std::move(tree));
    }
}

double GradientBoosting::predict(std::span<const double> x) const {
    double acc = base_;
    for (const DecisionTree& tree : stages_) acc += params_.learningRate * tree.predict(x);
    return acc;
}

// --- AdaBoostR2 ----------------------------------------------------------------

void AdaBoostR2::fit(const Matrix& x, const Vector& y) {
    stages_.clear();
    stageWeights_.clear();
    const std::size_t n = x.rows();
    Vector weight(n, 1.0 / static_cast<double>(n));
    util::Rng rng(params_.seed);

    for (int stage = 0; stage < params_.stages; ++stage) {
        // Weighted bootstrap resample (Drucker's formulation).
        Vector cumulative(n);
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            acc += weight[i];
            cumulative[i] = acc;
        }
        std::vector<std::size_t> sample(n);
        for (std::size_t i = 0; i < n; ++i) {
            const double u = rng.uniformReal(0.0, acc);
            sample[i] = static_cast<std::size_t>(
                std::lower_bound(cumulative.begin(), cumulative.end(), u) - cumulative.begin());
            sample[i] = std::min(sample[i], n - 1);
        }
        DecisionTree::Params tp;
        tp.maxDepth = params_.maxDepth;
        tp.seed = rng.uniformInt(0, UINT64_MAX);
        DecisionTree tree(tp);
        tree.fitSubset(x, y, sample);

        // Normalized absolute loss over all samples.
        Vector loss(n, 0.0);
        double lossMax = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            loss[i] = std::abs(tree.predict(x.row(i)) - y[i]);
            lossMax = std::max(lossMax, loss[i]);
        }
        if (lossMax < 1e-12) {  // perfect learner: take it and stop
            stages_.push_back(std::move(tree));
            stageWeights_.push_back(10.0);
            break;
        }
        double avgLoss = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            loss[i] /= lossMax;
            avgLoss += loss[i] * weight[i];
        }
        avgLoss /= std::accumulate(weight.begin(), weight.end(), 0.0);
        if (avgLoss >= 0.5) break;  // stop when the learner is no better than chance

        const double beta = avgLoss / (1.0 - avgLoss);
        for (std::size_t i = 0; i < n; ++i) weight[i] *= std::pow(beta, 1.0 - loss[i]);
        stages_.push_back(std::move(tree));
        stageWeights_.push_back(std::log(1.0 / beta));
    }

    if (stages_.empty()) {  // degenerate data: fall back to a single tree
        DecisionTree tree;
        tree.fit(x, y);
        stages_.push_back(std::move(tree));
        stageWeights_.push_back(1.0);
    }
}

double AdaBoostR2::predict(std::span<const double> x) const {
    // Weighted median of stage predictions.
    std::vector<std::pair<double, double>> pred;  // (value, weight)
    pred.reserve(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i)
        pred.emplace_back(stages_[i].predict(x), stageWeights_[i]);
    std::sort(pred.begin(), pred.end());
    double total = 0.0;
    for (const auto& [v, w] : pred) total += w;
    double acc = 0.0;
    for (const auto& [v, w] : pred) {
        acc += w;
        if (acc >= 0.5 * total) return v;
    }
    return pred.empty() ? 0.0 : pred.back().first;
}

}  // namespace axf::ml
