#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "src/ml/models.hpp"
#include "src/util/stats.hpp"

namespace axf::ml {

namespace {

enum class Op : std::uint8_t { Const, Var, Add, Sub, Mul, Div, Sqrt, Log };

/// Expression tree node stored in a flat pool (index-linked).
struct ExprNode {
    Op op = Op::Const;
    double value = 0.0;  ///< Const payload
    int var = 0;         ///< Var payload
    int left = -1;
    int right = -1;
};

struct Expr {
    std::vector<ExprNode> pool;
    int root = -1;

    double eval(int node, std::span<const double> x) const {
        const ExprNode& n = pool[static_cast<std::size_t>(node)];
        switch (n.op) {
            case Op::Const: return n.value;
            case Op::Var: return x[static_cast<std::size_t>(n.var)];
            case Op::Add: return eval(n.left, x) + eval(n.right, x);
            case Op::Sub: return eval(n.left, x) - eval(n.right, x);
            case Op::Mul: return eval(n.left, x) * eval(n.right, x);
            case Op::Div: {
                const double denom = eval(n.right, x);
                return std::abs(denom) < 1e-9 ? 1.0 : eval(n.left, x) / denom;
            }
            case Op::Sqrt: return std::sqrt(std::abs(eval(n.left, x)));
            case Op::Log: return std::log1p(std::abs(eval(n.left, x)));
        }
        return 0.0;
    }
    double eval(std::span<const double> x) const { return root < 0 ? 0.0 : eval(root, x); }

    std::string print(int node) const {
        const ExprNode& n = pool[static_cast<std::size_t>(node)];
        std::ostringstream os;
        switch (n.op) {
            case Op::Const: os << n.value; break;
            case Op::Var: os << "x" << n.var; break;
            case Op::Add: os << "(" << print(n.left) << " + " << print(n.right) << ")"; break;
            case Op::Sub: os << "(" << print(n.left) << " - " << print(n.right) << ")"; break;
            case Op::Mul: os << "(" << print(n.left) << " * " << print(n.right) << ")"; break;
            case Op::Div: os << "(" << print(n.left) << " / " << print(n.right) << ")"; break;
            case Op::Sqrt: os << "sqrt(" << print(n.left) << ")"; break;
            case Op::Log: os << "log1p(" << print(n.left) << ")"; break;
        }
        return os.str();
    }
};

int growRandom(Expr& e, int depth, int maxDepth, int dims, util::Rng& rng) {
    ExprNode node;
    const bool leaf = depth >= maxDepth || rng.bernoulli(0.3);
    if (leaf) {
        if (rng.bernoulli(0.7)) {
            node.op = Op::Var;
            node.var = static_cast<int>(rng.index(static_cast<std::size_t>(dims)));
        } else {
            node.op = Op::Const;
            node.value = rng.uniformReal(-2.0, 2.0);
        }
    } else {
        switch (rng.index(6)) {
            case 0: node.op = Op::Add; break;
            case 1: node.op = Op::Sub; break;
            case 2: node.op = Op::Mul; break;
            case 3: node.op = Op::Div; break;
            case 4: node.op = Op::Sqrt; break;
            default: node.op = Op::Log; break;
        }
        node.left = growRandom(e, depth + 1, maxDepth, dims, rng);
        if (node.op != Op::Sqrt && node.op != Op::Log)
            node.right = growRandom(e, depth + 1, maxDepth, dims, rng);
    }
    e.pool.push_back(node);
    return static_cast<int>(e.pool.size()) - 1;
}

Expr randomExpr(int maxDepth, int dims, util::Rng& rng) {
    Expr e;
    e.root = growRandom(e, 0, maxDepth, dims, rng);
    return e;
}

/// Copies the subtree rooted at `node` in `src` into `dst`'s pool.
int copySubtree(const Expr& src, int node, Expr& dst) {
    ExprNode n = src.pool[static_cast<std::size_t>(node)];
    if (n.left >= 0) n.left = copySubtree(src, n.left, dst);
    if (n.right >= 0) n.right = copySubtree(src, n.right, dst);
    dst.pool.push_back(n);
    return static_cast<int>(dst.pool.size()) - 1;
}

/// Rebuilds `e` compactly, replacing the subtree at `target` with a copy of
/// `donorSub` from `donor`.
Expr graft(const Expr& e, int target, const Expr& donor, int donorSub) {
    Expr out;
    // Recursive rebuild with substitution.
    const std::function<int(int)> rebuild = [&](int node) -> int {
        if (node == target) return copySubtree(donor, donorSub, out);
        ExprNode n = e.pool[static_cast<std::size_t>(node)];
        if (n.left >= 0) n.left = rebuild(n.left);
        if (n.right >= 0) n.right = rebuild(n.right);
        out.pool.push_back(n);
        return static_cast<int>(out.pool.size()) - 1;
    };
    out.root = rebuild(e.root);
    return out;
}

/// All node indices reachable from the root (pool may contain garbage after
/// grafting, so enumerate live nodes explicitly).
void liveNodes(const Expr& e, int node, std::vector<int>& out) {
    out.push_back(node);
    const ExprNode& n = e.pool[static_cast<std::size_t>(node)];
    if (n.left >= 0) liveNodes(e, n.left, out);
    if (n.right >= 0) liveNodes(e, n.right, out);
}

}  // namespace

struct SymbolicRegression::Impl {
    Expr best;
    double scaleA = 0.0;  ///< y ~ a + b * f(x)
    double scaleB = 1.0;
};

SymbolicRegression::SymbolicRegression() = default;
SymbolicRegression::SymbolicRegression(Params params) : params_(params) {}
SymbolicRegression::~SymbolicRegression() = default;
SymbolicRegression::SymbolicRegression(SymbolicRegression&&) noexcept = default;
SymbolicRegression& SymbolicRegression::operator=(SymbolicRegression&&) noexcept = default;

void SymbolicRegression::fit(const Matrix& x, const Vector& y) {
    impl_ = std::make_unique<Impl>();
    util::Rng rng(params_.seed);
    const int dims = static_cast<int>(x.cols());

    // Fitness: MSE after optimal linear scaling (Keijzer's trick) — the GP
    // only has to discover the *shape*, not the offset/gain.
    const auto fitness = [&](const Expr& e, double& aOut, double& bOut) {
        Vector f(x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r) {
            const double v = e.eval(x.row(r));
            if (!std::isfinite(v)) return std::numeric_limits<double>::infinity();
            f[r] = v;
        }
        const util::LinearFit lf = util::fitLine(f, y);
        aOut = lf.intercept;
        bOut = lf.slope;
        double mse = 0.0;
        for (std::size_t r = 0; r < x.rows(); ++r) {
            const double resid = y[r] - (lf.intercept + lf.slope * f[r]);
            mse += resid * resid;
        }
        return mse / static_cast<double>(std::max<std::size_t>(1, x.rows()));
    };

    struct Individual {
        Expr expr;
        double mse = std::numeric_limits<double>::infinity();
        double a = 0.0, b = 1.0;
    };
    std::vector<Individual> pop(static_cast<std::size_t>(params_.population));
    for (Individual& ind : pop) {
        ind.expr = randomExpr(params_.maxDepth, dims, rng);
        ind.mse = fitness(ind.expr, ind.a, ind.b);
    }

    const auto tournament = [&]() -> const Individual& {
        const Individual* best = &pop[rng.index(pop.size())];
        for (int i = 1; i < params_.tournament; ++i) {
            const Individual& challenger = pop[rng.index(pop.size())];
            if (challenger.mse < best->mse) best = &challenger;
        }
        return *best;
    };

    for (int gen = 0; gen < params_.generations; ++gen) {
        std::vector<Individual> next;
        next.reserve(pop.size());
        // Elitism: carry over the incumbent best.
        next.push_back(*std::min_element(
            pop.begin(), pop.end(),
            [](const Individual& l, const Individual& r) { return l.mse < r.mse; }));
        while (next.size() < pop.size()) {
            Individual child;
            if (rng.bernoulli(0.85)) {  // subtree crossover
                const Individual& pa = tournament();
                const Individual& pb = tournament();
                std::vector<int> nodesA, nodesB;
                liveNodes(pa.expr, pa.expr.root, nodesA);
                liveNodes(pb.expr, pb.expr.root, nodesB);
                child.expr = graft(pa.expr, nodesA[rng.index(nodesA.size())], pb.expr,
                                   nodesB[rng.index(nodesB.size())]);
            } else {  // subtree mutation
                const Individual& pa = tournament();
                std::vector<int> nodesA;
                liveNodes(pa.expr, pa.expr.root, nodesA);
                const Expr fresh = randomExpr(std::max(2, params_.maxDepth - 2), dims, rng);
                child.expr = graft(pa.expr, nodesA[rng.index(nodesA.size())], fresh, fresh.root);
            }
            // Bloat control: reject oversized offspring.
            if (child.expr.pool.size() > 120) continue;
            child.mse = fitness(child.expr, child.a, child.b);
            next.push_back(std::move(child));
        }
        pop = std::move(next);
    }

    const Individual& best = *std::min_element(
        pop.begin(), pop.end(),
        [](const Individual& l, const Individual& r) { return l.mse < r.mse; });
    impl_->best = best.expr;
    impl_->scaleA = best.a;
    impl_->scaleB = best.b;
}

double SymbolicRegression::predict(std::span<const double> x) const {
    if (!impl_) return 0.0;
    const double v = impl_->best.eval(x);
    return std::isfinite(v) ? impl_->scaleA + impl_->scaleB * v : impl_->scaleA;
}

std::string SymbolicRegression::expression() const {
    if (!impl_ || impl_->best.root < 0) return "0";
    return impl_->best.print(impl_->best.root);
}

}  // namespace axf::ml
