#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace axf::ml {

using Vector = std::vector<double>;

/// Dense row-major matrix — just enough linear algebra for the Table-I
/// model zoo (normal equations, kernel systems, PLS deflation).
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    static Matrix identity(std::size_t n);
    /// Builds a matrix from row vectors (all rows must share one length).
    static Matrix fromRows(const std::vector<Vector>& rows);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return data_.empty(); }

    double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
    std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

    Matrix transposed() const;
    Matrix operator*(const Matrix& rhs) const;
    Vector operator*(const Vector& v) const;

    /// A^T * A (the Gram matrix of the columns).
    Matrix gram() const;
    /// A^T * v.
    Vector transposeTimes(const Vector& v) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky; falls
/// back to partial-pivot Gaussian elimination when A is not SPD.
Vector solveSpd(Matrix a, Vector b);

/// Solves A x = b by Gaussian elimination with partial pivoting.  Throws
/// std::runtime_error on (numerically) singular systems.
Vector solveLinear(Matrix a, Vector b);

double dot(std::span<const double> a, std::span<const double> b);
double squaredDistance(std::span<const double> a, std::span<const double> b);

}  // namespace axf::ml
