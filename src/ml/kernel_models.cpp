#include <algorithm>
#include <cmath>

#include "src/ml/models.hpp"
#include "src/util/stats.hpp"

namespace axf::ml {

namespace {

double rbf(std::span<const double> a, std::span<const double> b, double gamma) {
    return std::exp(-gamma * squaredDistance(a, b));
}

/// Median pairwise squared distance heuristic for the RBF length scale.
double medianGamma(const Matrix& x) {
    std::vector<double> d2;
    const std::size_t n = x.rows();
    const std::size_t step = std::max<std::size_t>(1, n / 64);  // subsample pairs
    for (std::size_t i = 0; i < n; i += step)
        for (std::size_t j = i + 1; j < n; j += step)
            d2.push_back(squaredDistance(x.row(i), x.row(j)));
    const double med = util::median(std::move(d2));
    return med > 1e-12 ? 1.0 / med : 1.0;
}

}  // namespace

void KernelRidge::fit(const Matrix& x, const Vector& y) {
    trainX_ = x;
    yMean_ = util::mean(y);
    gammaUsed_ = gamma_ > 0.0 ? gamma_ : medianGamma(x);

    const std::size_t n = x.rows();
    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = rbf(x.row(i), x.row(j), gammaUsed_);
            k.at(i, j) = v;
            k.at(j, i) = v;
        }
        k.at(i, i) += alpha_;
    }
    Vector yc(n);
    for (std::size_t i = 0; i < n; ++i) yc[i] = y[i] - yMean_;
    dual_ = solveSpd(std::move(k), std::move(yc));
}

double KernelRidge::predict(std::span<const double> x) const {
    double acc = yMean_;
    for (std::size_t i = 0; i < trainX_.rows(); ++i)
        acc += dual_[i] * rbf(trainX_.row(i), x, gammaUsed_);
    return acc;
}

double GaussianProcess::predictVariance(std::span<const double> x) const {
    // var = k(x,x) - k_*^T (K + sigma^2 I)^-1 k_*.  Solving per query is
    // acceptable at the library's dataset sizes and keeps fit() lean.
    const std::size_t n = trainX_.rows();
    if (n == 0) return 1.0;
    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double v = rbf(trainX_.row(i), trainX_.row(j), gammaUsed_);
            k.at(i, j) = v;
            k.at(j, i) = v;
        }
        k.at(i, i) += alpha_;
    }
    Vector kstar(n);
    for (std::size_t i = 0; i < n; ++i) kstar[i] = rbf(trainX_.row(i), x, gammaUsed_);
    const Vector sol = solveSpd(std::move(k), kstar);
    const double var = 1.0 - dot(kstar, sol);
    return std::max(0.0, var);
}

}  // namespace axf::ml
