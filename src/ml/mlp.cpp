#include <algorithm>
#include <cmath>

#include "src/ml/models.hpp"
#include "src/util/stats.hpp"

namespace axf::ml {

void MlpRegressor::fit(const Matrix& x, const Vector& y) {
    const std::size_t n = x.rows();
    const std::size_t d = x.cols();
    const std::size_t h = static_cast<std::size_t>(params_.hidden);

    yMean_ = util::mean(y);
    yScale_ = std::max(1e-9, util::stddev(y));
    Vector yn(n);
    for (std::size_t i = 0; i < n; ++i) yn[i] = (y[i] - yMean_) / yScale_;

    util::Rng rng(params_.seed);
    const double initScale = 1.0 / std::sqrt(static_cast<double>(d));
    w1_ = Matrix(h, d);
    b1_.assign(h, 0.0);
    w2_.assign(h, 0.0);
    b2_ = 0.0;
    for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = 0; j < d; ++j) w1_.at(i, j) = rng.gaussian(0.0, initScale);
        w2_[i] = rng.gaussian(0.0, 1.0 / std::sqrt(static_cast<double>(h)));
    }

    // Full-batch Adam.
    Matrix mW1(h, d), vW1(h, d);
    Vector mB1(h, 0.0), vB1(h, 0.0), mW2(h, 0.0), vW2(h, 0.0);
    double mB2 = 0.0, vB2 = 0.0;
    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;

    Vector hidden(h), grad2(h);
    Matrix gradW1(h, d);
    Vector gradB1(h), gradW2(h);

    for (int epoch = 1; epoch <= params_.epochs; ++epoch) {
        for (std::size_t i = 0; i < h; ++i) {
            gradB1[i] = 0.0;
            gradW2[i] = 0.0;
            for (std::size_t j = 0; j < d; ++j) gradW1.at(i, j) = 0.0;
        }
        double gradB2 = 0.0;

        for (std::size_t r = 0; r < n; ++r) {
            const std::span<const double> in = x.row(r);
            double out = b2_;
            for (std::size_t i = 0; i < h; ++i) {
                hidden[i] = std::tanh(dot(w1_.row(i), in) + b1_[i]);
                out += w2_[i] * hidden[i];
            }
            const double delta = (out - yn[r]) / static_cast<double>(n);
            gradB2 += delta;
            for (std::size_t i = 0; i < h; ++i) {
                gradW2[i] += delta * hidden[i];
                const double back = delta * w2_[i] * (1.0 - hidden[i] * hidden[i]);
                gradB1[i] += back;
                for (std::size_t j = 0; j < d; ++j) gradW1.at(i, j) += back * in[j];
            }
        }

        const double lr = params_.learningRate;
        const double bc1 = 1.0 - std::pow(beta1, epoch);
        const double bc2 = 1.0 - std::pow(beta2, epoch);
        const auto adam = [&](double& param, double grad, double& m, double& v) {
            m = beta1 * m + (1.0 - beta1) * grad;
            v = beta2 * v + (1.0 - beta2) * grad * grad;
            param -= lr * (m / bc1) / (std::sqrt(v / bc2) + eps);
        };
        for (std::size_t i = 0; i < h; ++i) {
            for (std::size_t j = 0; j < d; ++j)
                adam(w1_.at(i, j), gradW1.at(i, j), mW1.at(i, j), vW1.at(i, j));
            adam(b1_[i], gradB1[i], mB1[i], vB1[i]);
            adam(w2_[i], gradW2[i], mW2[i], vW2[i]);
        }
        adam(b2_, gradB2, mB2, vB2);
    }
}

double MlpRegressor::predict(std::span<const double> x) const {
    double out = b2_;
    for (std::size_t i = 0; i < w2_.size(); ++i)
        out += w2_[i] * std::tanh(dot(w1_.row(i), x) + b1_[i]);
    return yMean_ + yScale_ * out;
}

}  // namespace axf::ml
