#include "src/ml/tuning.hpp"

#include <limits>
#include <memory>
#include <stdexcept>

#include "src/ml/models.hpp"

namespace axf::ml {

namespace {

ModelVariant scaledVariant(std::string description, std::function<RegressorPtr()> makeInner) {
    return ModelVariant{std::move(description), [makeInner = std::move(makeInner)] {
                            return RegressorPtr(
                                std::make_unique<ScaledRegressor>(makeInner()));
                        }};
}

}  // namespace

std::vector<ModelVariant> hyperparameterGrid(const std::string& modelId,
                                             const AsicColumns& asic) {
    std::vector<ModelVariant> grid;
    const auto add = [&grid](std::string desc, std::function<RegressorPtr()> make) {
        grid.push_back(ModelVariant{std::move(desc), std::move(make)});
    };

    if (modelId == "ML1" || modelId == "ML2" || modelId == "ML3") {
        const std::size_t col = modelId == "ML1"   ? asic.power
                                : modelId == "ML2" ? asic.delay
                                                   : asic.area;
        add("default", [col] { return RegressorPtr(std::make_unique<SingleFeatureRegression>(col)); });
    } else if (modelId == "ML4") {
        for (int comp : {2, 4, 6})
            grid.push_back(scaledVariant("components=" + std::to_string(comp), [comp] {
                return RegressorPtr(std::make_unique<PlsRegression>(comp));
            }));
    } else if (modelId == "ML5") {
        for (int trees : {20, 40, 80}) {
            add("trees=" + std::to_string(trees), [trees] {
                RandomForest::Params p;
                p.trees = trees;
                return RegressorPtr(std::make_unique<RandomForest>(p));
            });
        }
    } else if (modelId == "ML6") {
        for (double lr : {0.05, 0.08, 0.15}) {
            add("lr=" + std::to_string(lr), [lr] {
                GradientBoosting::Params p;
                p.learningRate = lr;
                return RegressorPtr(std::make_unique<GradientBoosting>(p));
            });
        }
    } else if (modelId == "ML7") {
        for (int depth : {3, 4, 6}) {
            add("depth=" + std::to_string(depth), [depth] {
                AdaBoostR2::Params p;
                p.maxDepth = depth;
                return RegressorPtr(std::make_unique<AdaBoostR2>(p));
            });
        }
    } else if (modelId == "ML8") {
        for (double noise : {0.01, 0.05, 0.2})
            grid.push_back(scaledVariant("noise=" + std::to_string(noise), [noise] {
                return RegressorPtr(std::make_unique<GaussianProcess>(noise));
            }));
    } else if (modelId == "ML9") {
        for (int gens : {16, 28}) {
            SymbolicRegression::Params p;
            p.generations = gens;
            grid.push_back(scaledVariant("generations=" + std::to_string(gens), [p] {
                return RegressorPtr(std::make_unique<SymbolicRegression>(p));
            }));
        }
    } else if (modelId == "ML10") {
        for (double alpha : {0.01, 0.08, 0.5})
            grid.push_back(scaledVariant("alpha=" + std::to_string(alpha), [alpha] {
                return RegressorPtr(std::make_unique<KernelRidge>(alpha));
            }));
    } else if (modelId == "ML11") {
        for (int iters : {10, 30})
            grid.push_back(scaledVariant("iterations=" + std::to_string(iters), [iters] {
                return RegressorPtr(std::make_unique<BayesianRidge>(iters));
            }));
    } else if (modelId == "ML12") {
        for (double alpha : {0.001, 0.01, 0.1})
            grid.push_back(scaledVariant("alpha=" + std::to_string(alpha), [alpha] {
                return RegressorPtr(std::make_unique<LassoRegression>(alpha));
            }));
    } else if (modelId == "ML13") {
        for (int active : {0, 6, 10})
            grid.push_back(scaledVariant("maxActive=" + std::to_string(active), [active] {
                return RegressorPtr(std::make_unique<LarsRegression>(active));
            }));
    } else if (modelId == "ML14") {
        for (double alpha : {0.1, 1.0, 10.0})
            grid.push_back(scaledVariant("alpha=" + std::to_string(alpha), [alpha] {
                return RegressorPtr(std::make_unique<RidgeRegression>(alpha));
            }));
    } else if (modelId == "ML15") {
        for (double eta : {0.005, 0.02, 0.05})
            grid.push_back(scaledVariant("eta0=" + std::to_string(eta), [eta] {
                return RegressorPtr(std::make_unique<SgdRegressor>(120, eta));
            }));
    } else if (modelId == "ML16") {
        for (int k : {3, 5, 9})
            grid.push_back(scaledVariant("k=" + std::to_string(k), [k] {
                return RegressorPtr(std::make_unique<KnnRegressor>(k));
            }));
    } else if (modelId == "ML17") {
        for (int hidden : {8, 16, 32}) {
            MlpRegressor::Params p;
            p.hidden = hidden;
            grid.push_back(scaledVariant("hidden=" + std::to_string(hidden), [p] {
                return RegressorPtr(std::make_unique<MlpRegressor>(p));
            }));
        }
    } else if (modelId == "ML18") {
        for (int depth : {6, 10, 14}) {
            add("depth=" + std::to_string(depth), [depth] {
                DecisionTree::Params p;
                p.maxDepth = depth;
                return RegressorPtr(std::make_unique<DecisionTree>(p));
            });
        }
    } else {
        throw std::out_of_range("hyperparameterGrid: unknown model id " + modelId);
    }
    return grid;
}

TunedModel tuneModel(const std::string& modelId, const AsicColumns& asic, const Matrix& xTrain,
                     const Vector& yTrain, const Matrix& xVal, const Vector& yVal,
                     const std::function<double(const Vector&, const Vector&)>& score) {
    TunedModel best;
    best.validationScore = -std::numeric_limits<double>::infinity();
    for (ModelVariant& variant : hyperparameterGrid(modelId, asic)) {
        RegressorPtr model = variant.make();
        model->fit(xTrain, yTrain);
        const double s = score(yVal, model->predictAll(xVal));
        if (s > best.validationScore) {
            best.validationScore = s;
            best.variantDescription = variant.description;
            best.make = variant.make;
        }
    }
    return best;
}

}  // namespace axf::ml
