#pragma once

#include <functional>
#include <vector>

#include "src/ml/registry.hpp"

namespace axf::ml {

/// One hyperparameter variant of a Table-I model.
struct ModelVariant {
    std::string description;  ///< e.g. "alpha=10"
    std::function<RegressorPtr()> make;
};

/// The small per-family hyperparameter grids behind the paper's
/// "modification of ML parameters" loop (Fig. 2).  Models without
/// meaningful knobs (ML1-ML3) return their single default variant.
std::vector<ModelVariant> hyperparameterGrid(const std::string& modelId,
                                             const AsicColumns& asic);

/// Result of tuning one model on a validation score.
struct TunedModel {
    std::string variantDescription;
    std::function<RegressorPtr()> make;
    double validationScore = 0.0;
};

/// Fits every grid variant on (xTrain, yTrain) and keeps the one whose
/// validation predictions maximize `score(yVal, yEst)` — the flow passes
/// the fidelity metric here.  Ties resolve to the earlier (simpler) variant.
TunedModel tuneModel(const std::string& modelId, const AsicColumns& asic, const Matrix& xTrain,
                     const Vector& yTrain, const Matrix& xVal, const Vector& yVal,
                     const std::function<double(const Vector&, const Vector&)>& score);

}  // namespace axf::ml
