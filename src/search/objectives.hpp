#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>

namespace axf::search {

/// Small fixed-capacity objective vector (all objectives MINIMIZED by
/// convention — adapters negate quality-like metrics).  Inline storage so
/// archive inserts and dominance scans never allocate; every entry of one
/// archive carries the same objective count.
class Objectives {
public:
    static constexpr std::size_t kMaxObjectives = 4;

    Objectives() = default;
    Objectives(std::initializer_list<double> values) {
        if (values.size() > kMaxObjectives)
            throw std::invalid_argument("Objectives: too many objectives");
        for (double v : values) values_[size_++] = v;
    }
    explicit Objectives(std::span<const double> values) {
        if (values.size() > kMaxObjectives)
            throw std::invalid_argument("Objectives: too many objectives");
        for (double v : values) values_[size_++] = v;
    }

    std::size_t size() const { return size_; }
    double operator[](std::size_t i) const { return values_[i]; }
    double& operator[](std::size_t i) { return values_[i]; }

    // Unused tail slots are value-initialized, so whole-array comparison
    // is well-defined.
    friend bool operator==(const Objectives&, const Objectives&) = default;

private:
    std::array<double, kMaxObjectives> values_{};
    std::size_t size_ = 0;
};

/// Pareto dominance over minimized objectives: `a` dominates `b` when no
/// objective of `a` exceeds `b`'s by more than `epsilon` and (for the
/// exact `epsilon == 0` case) at least one is strictly smaller.  With
/// `epsilon > 0` weak epsilon-coverage counts as domination — that is the
/// knob that coarsens an archive: a candidate must beat some archived
/// entry by a real margin in at least one objective to enter.
inline bool dominates(const Objectives& a, const Objectives& b, double epsilon = 0.0) {
    bool strict = epsilon > 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i] + epsilon) return false;
        if (a[i] < b[i]) strict = true;
    }
    return strict;
}

}  // namespace axf::search
