#include "src/search/island_search.hpp"

namespace axf::search {

const char* strategyName(Strategy strategy) {
    switch (strategy) {
        case Strategy::HillClimb: return "hill-climb";
        case Strategy::Anneal: return "anneal";
        case Strategy::Genetic: return "genetic";
    }
    return "?";
}

}  // namespace axf::search
