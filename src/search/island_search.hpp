#pragma once

#include <array>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/durable/checkpoint.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/search/pareto_archive.hpp"
#include "src/util/bytes.hpp"
#include "src/util/cancellation.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::search {

namespace detail {

/// Search-layer metrics, resolved once per process (shared by every
/// IslandSearch instantiation — the registry is name-keyed, not typed).
struct SearchMetrics {
    obs::Counter& epochs = obs::Registry::global().counter("search.epochs");
    obs::Counter& generations = obs::Registry::global().counter("search.generations");
    obs::Counter& migrants = obs::Registry::global().counter("search.migrants");
    obs::Gauge& archiveSize = obs::Registry::global().gauge("search.archive_size");
    obs::Histogram& epochSeconds = obs::Registry::global().histogram("search.epoch_seconds");
};

inline SearchMetrics& searchMetrics() {
    static SearchMetrics* m = new SearchMetrics();
    return *m;
}

}  // namespace detail

/// The workload contract of the search engine.  A `Problem` owns the
/// genome representation and everything domain-specific about it:
///
///  - `Genome` — copyable, equality-comparable (archive dedup);
///  - `objectiveCount()` — k, all objectives MINIMIZED (adapters negate
///    quality-like metrics);
///  - `random(rng)` / `mutate(g, rng)` / `crossover(a, b, rng)` — the
///    variation operators, drawing all randomness from the passed stream;
///  - `evaluate(batch, out)` — estimates objectives for a whole
///    speculative batch at once so per-call overhead (estimator setup,
///    feature extraction) amortizes.  Must be const, RNG-free and
///    thread-safe: islands call it concurrently.
template <typename P>
concept Problem =
    std::copy_constructible<typename P::Genome> &&
    std::equality_comparable<typename P::Genome> &&
    requires(const P& p, const typename P::Genome& g, util::Rng& rng,
             std::span<const typename P::Genome> batch, std::span<Objectives> out) {
        { p.objectiveCount() } -> std::convertible_to<std::size_t>;
        { p.random(rng) } -> std::same_as<typename P::Genome>;
        { p.mutate(g, rng) } -> std::same_as<typename P::Genome>;
        { p.crossover(g, g, rng) } -> std::same_as<typename P::Genome>;
        { p.evaluate(batch, out) };
    };

/// A `Problem` whose genomes can travel through a checkpoint file.  The
/// problem owns the genome encoding (the search engine treats genomes as
/// opaque), so it also owns their byte layout: `serializeGenome` appends a
/// self-delimiting encoding, `deserializeGenome` reads exactly what was
/// written and returns nullopt on malformed input (the reader's sticky
/// failure makes "read all fields, check once" safe).  Only problems
/// satisfying this concept can use the checkpoint/resume API below.
template <typename P>
concept CheckpointableProblem =
    Problem<P> && requires(const P& p, const typename P::Genome& g, util::ByteWriter& out,
                           util::ByteReader& in) {
        { p.serializeGenome(g, out) };
        { p.deserializeGenome(in) } -> std::same_as<std::optional<typename P::Genome>>;
    };

/// Per-island local search policy.  All strategies share the archive and
/// the variation operators; they differ in how parents are chosen and
/// what steers the walk.
enum class Strategy {
    HillClimb,  ///< estimator-guided archive hill-climb (the AutoAx recipe)
    Anneal,     ///< single-trajectory simulated annealing over the archive
    Genetic,    ///< small GA: crossover of two archive parents + mutation
};

const char* strategyName(Strategy strategy);

/// Deterministic island-model metaheuristic over any `Problem`.
///
/// N islands each own a `ParetoArchive` and a private RNG stream; the
/// island seeds iterate splitmix64 from the base seed (island 0 KEEPS the
/// base seed, which is what makes `islands = 1, strategy = HillClimb,
/// batch = 1` reproduce the legacy single-archive serial search
/// bit-for-bit).  Every generation an island drafts a speculative batch
/// of candidates — all RNG draws happen up front against the
/// pre-generation archive — then estimates the whole batch with ONE
/// `Problem::evaluate` call and folds the results back in draft order.
///
/// Determinism contract: an island's trajectory is a pure function of its
/// seed, its strategy and the migrants it receives.  Islands advance in
/// lockstep epochs of `migrationInterval` generations (one fixed work
/// item per island, fanned over the pool), migration runs serially in
/// island order on pre-epoch snapshots (ring topology: island i receives
/// from island i-1), and the final merge inserts island archives in
/// island order — so the result is bit-identical for ANY thread count
/// (including `threads = 1` and the `AXF_THREADS` pool sizing), though it
/// legitimately changes with the island count or strategy mix.
template <Problem P>
class IslandSearch {
public:
    using Genome = typename P::Genome;
    using Archive = ParetoArchive<Genome>;
    using Entry = typename Archive::Entry;

    struct Options {
        int islands = 1;
        int generations = 1000;     ///< per island
        int batch = 1;              ///< speculative candidates per generation
        int seedsPerIsland = 0;     ///< random genomes seeding each archive
        int migrationInterval = 16; ///< generations between migrations (0 = never)
        int migrants = 4;           ///< entries offered per migration (0 = none)
        std::size_t archiveCap = 0; ///< per-island and merged cap (0 = unlimited)
        double epsilon = 0.0;       ///< epsilon-dominance coarsening
        std::uint64_t seed = 1;     ///< base of the splitmix64 island seed stream
        Strategy strategy = Strategy::HillClimb;
        /// Per-island strategy override, cycled (empty = `strategy`
        /// everywhere).  Mixing strategies across islands diversifies the
        /// search without giving up determinism.
        std::vector<Strategy> islandStrategies;
        double annealStartTemp = 0.25;  ///< relative-worsening scale at gen 0
        double annealEndTemp = 1e-3;    ///< ... at the final generation
        std::size_t threads = 0;        ///< worker cap (0 = whole pool, 1 = serial)
        util::ThreadPool* pool = nullptr;  ///< nullptr = the process-global pool

        // --- Durability (requires a CheckpointableProblem) ---------------
        /// Snapshot file updated at epoch boundaries (empty = no
        /// checkpointing).  Snapshots are taken only at states an
        /// uninterrupted run also passes through, which is what makes
        /// resume bit-identity possible at all.
        std::string checkpointPath;
        int checkpointInterval = 1;  ///< epochs between snapshots (final one always written)
        /// Caller-supplied identity of the problem (estimator digests,
        /// netlist hashes, ...), folded with the result-affecting options
        /// into the checkpoint header digest.  Threads/pool are excluded:
        /// resuming on a different thread count is explicitly supported.
        std::uint64_t problemDigest = 0;
        /// Checked ONLY at epoch boundaries — an epoch is the atom of
        /// search work, so cancellation never leaves a half-stepped island.
        /// On trip: final checkpoint is flushed, then OperationCancelled.
        const util::CancellationToken* cancel = nullptr;
        /// Observability hook invoked after each epoch boundary (post
        /// checkpoint write) with the generations completed so far.  Tests
        /// throw from here to simulate a kill with the snapshot on disk;
        /// tools pulse watchdogs and throttle from here.
        std::function<void(int)> onEpoch;
    };

    struct Result {
        Archive archive;  ///< block-ordered merge over island archives
        std::size_t evaluations = 0;  ///< genomes sent through Problem::evaluate
        std::vector<std::size_t> islandEvaluations;
        /// Final per-island RNG streams, so a caller can continue drawing
        /// deterministically where the search left off (the DSE random
        /// baseline continues island 0's stream — with one island that is
        /// exactly the legacy post-search state).
        std::vector<util::Rng> islandRngs;
    };

    IslandSearch(const P& problem, Options options)
        : problem_(problem), options_(std::move(options)) {
        if (options_.islands < 1) throw std::invalid_argument("IslandSearch: islands < 1");
        if (options_.batch < 1) throw std::invalid_argument("IslandSearch: batch < 1");
        if (options_.generations < 0)
            throw std::invalid_argument("IslandSearch: negative generations");
        if (options_.checkpointInterval < 1)
            throw std::invalid_argument("IslandSearch: checkpointInterval < 1");
        if constexpr (!CheckpointableProblem<P>) {
            if (!options_.checkpointPath.empty())
                throw std::invalid_argument(
                    "IslandSearch: checkpointPath set but the problem has no genome "
                    "serialization hooks");
        }
    }

    /// Runs the search.  `seeded` entries are pre-evaluated knowledge
    /// (e.g. a DSE training sample) inserted into EVERY island archive
    /// after its private random seeds.
    Result run(std::span<const Entry> seeded = {}) const {
        const std::size_t n = static_cast<std::size_t>(options_.islands);
        std::vector<Island> islands;
        islands.reserve(n);
        std::uint64_t seedState = options_.seed;
        for (std::size_t i = 0; i < n; ++i) {
            Island island{Archive(options_.archiveCap, options_.epsilon),
                          util::Rng(i == 0 ? options_.seed : util::splitmix64(seedState))};
            island.strategy = options_.islandStrategies.empty()
                                  ? options_.strategy
                                  : options_.islandStrategies[i % options_.islandStrategies.size()];
            islands.push_back(std::move(island));
        }

        util::ThreadPool& pool =
            options_.pool != nullptr ? *options_.pool : util::ThreadPool::global();

        // Seeding runs island-parallel too: each island only touches its
        // own state, and its random draws come from its own stream.
        pool.parallelFor(
            n, [&](std::size_t i) { seedIsland(islands[i], seeded); }, options_.threads);

        return runEpochs(islands, 0);
    }

    /// Continues a search from a checkpoint written by a previous run with
    /// the SAME result-affecting options (thread count may differ).  The
    /// returned Result is bit-identical to what the uninterrupted run
    /// would have produced — a checkpoint captures every bit of search
    /// state (archives in entry order, RNG streams, counters, anneal
    /// walks) at an epoch boundary the uninterrupted run also crossed.
    /// Throws durable::CheckpointError when the file is missing, corrupt,
    /// or was produced by a different configuration.
    Result resume(const std::string& path) const
        requires CheckpointableProblem<P>
    {
        auto loaded = durable::loadCheckpoint(path);
        if (!loaded) throw durable::CheckpointError(path + ": missing checkpoint");
        return resumeLoaded(path, *loaded);
    }

    /// Resume from `Options::checkpointPath` when a checkpoint is there,
    /// start fresh otherwise — the idiom for restartable campaigns.  A
    /// present-but-invalid checkpoint still throws: silently discarding
    /// possibly-hours of state is worse than a loud stop.
    Result runOrResume(std::span<const Entry> seeded = {}) const
        requires CheckpointableProblem<P>
    {
        if (!options_.checkpointPath.empty())
            if (auto loaded = durable::loadCheckpoint(options_.checkpointPath))
                return resumeLoaded(options_.checkpointPath, *loaded);
        return run(seeded);
    }

    /// The digest stamped into (and demanded of) this search's checkpoint
    /// headers: every result-affecting option folded with the caller's
    /// problemDigest.  Exposed so tools can audit a checkpoint against a
    /// known configuration without constructing the problem.
    std::uint64_t checkpointDigest() const {
        std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
        const auto mix = [&h](std::uint64_t v) {
            for (int i = 0; i < 8; ++i) {
                h ^= (v >> (8 * i)) & 0xFF;
                h *= 0x100000001B3ull;
            }
        };
        const auto mixDouble = [&](double v) {
            std::uint64_t bits;
            std::memcpy(&bits, &v, sizeof bits);
            mix(bits);
        };
        mix(static_cast<std::uint64_t>(options_.islands));
        mix(static_cast<std::uint64_t>(options_.generations));
        mix(static_cast<std::uint64_t>(options_.batch));
        mix(static_cast<std::uint64_t>(options_.seedsPerIsland));
        mix(static_cast<std::uint64_t>(options_.migrationInterval));
        mix(static_cast<std::uint64_t>(options_.migrants));
        mix(options_.archiveCap);
        mixDouble(options_.epsilon);
        mix(options_.seed);
        mix(static_cast<std::uint64_t>(options_.strategy));
        mix(options_.islandStrategies.size());
        for (Strategy s : options_.islandStrategies) mix(static_cast<std::uint64_t>(s));
        mixDouble(options_.annealStartTemp);
        mixDouble(options_.annealEndTemp);
        mix(options_.problemDigest);
        return h;
    }

private:
    struct Island {
        Archive archive;
        util::Rng rng;
        Strategy strategy = Strategy::HillClimb;
        std::size_t evaluations = 0;
        // Annealing walk state (optional: genomes need not be
        // default-constructible).
        std::optional<Genome> current;
        Objectives currentObjectives;
        // Reused draft buffers (no per-generation allocation).
        std::vector<Genome> draft;
        std::vector<Objectives> estimates;
    };

    /// Lockstep epochs with serial ring migration between them, starting
    /// from `done` generations already completed (0 for a fresh run, the
    /// snapshot's counter for a resume — resume re-enters this loop with
    /// islands restored to exactly the state a fresh run had here).
    Result runEpochs(std::vector<Island>& islands, int done) const {
        const std::size_t n = islands.size();
        util::ThreadPool& pool =
            options_.pool != nullptr ? *options_.pool : util::ThreadPool::global();
        const int interval =
            options_.migrationInterval > 0 ? options_.migrationInterval : options_.generations;
        int epoch = interval > 0 ? done / interval : 0;
        // A token already tripped before the first epoch: snapshot the
        // boundary state and stop before burning an epoch of work.
        checkCancelled(islands, done);
        while (done < options_.generations) {
            obs::Span epochSpan("search_epoch");
            obs::ScopedTimer epochTimer(detail::searchMetrics().epochSeconds);
            const int step = std::min(interval, options_.generations - done);
            // The epoch parallelFor deliberately takes NO token: an epoch
            // is the cancellation atom, so a snapshot always captures a
            // state the uninterrupted run also passes through.
            pool.parallelFor(
                n,
                [&](std::size_t i) {
                    for (int g = 0; g < step; ++g) generation(islands[i], done + g);
                },
                options_.threads);
            done += step;
            if (n > 1 && done < options_.generations) migrate(islands);
            ++epoch;
            detail::searchMetrics().epochs.add();
            detail::searchMetrics().generations.add(static_cast<std::uint64_t>(step) * n);
            if (obs::metricsEnabled()) {
                std::size_t resident = 0;
                for (const Island& island : islands) resident += island.archive.entries().size();
                detail::searchMetrics().archiveSize.set(static_cast<double>(resident));
            }
            // Post-migration IS the boundary state: what gets snapshotted
            // is what the next epoch starts from.  The final (complete)
            // snapshot is always written so runOrResume can fast-forward.
            if (epoch % options_.checkpointInterval == 0 || done >= options_.generations)
                writeSnapshot(islands, done);
            if (options_.onEpoch) options_.onEpoch(done);
            checkCancelled(islands, done);
        }

        Result result;
        result.archive = Archive(options_.archiveCap, options_.epsilon);
        result.islandEvaluations.reserve(n);
        result.islandRngs.reserve(n);
        for (Island& island : islands) {
            result.archive.merge(island.archive);
            result.evaluations += island.evaluations;
            result.islandEvaluations.push_back(island.evaluations);
            result.islandRngs.push_back(std::move(island.rng));
        }
        return result;
    }

    /// Epoch-boundary cancellation: flush a final snapshot (even off the
    /// checkpointInterval cadence — the whole point is not losing work),
    /// then report via the distinct exception type.
    void checkCancelled(std::vector<Island>& islands, int done) const {
        if (options_.cancel == nullptr || !options_.cancel->stopRequested()) return;
        writeSnapshot(islands, done);
        throw util::OperationCancelled("IslandSearch cancelled at generation " +
                                       std::to_string(done));
    }

    void writeSnapshot(const std::vector<Island>& islands, int done) const {
        if constexpr (CheckpointableProblem<P>) {
            if (options_.checkpointPath.empty()) return;
            durable::writeCheckpoint(options_.checkpointPath, checkpointDigest(),
                                     serializeState(islands, done));
        }
    }

    static void writeObjectives(util::ByteWriter& out, const Objectives& objectives) {
        out.u8(static_cast<std::uint8_t>(objectives.size()));
        for (std::size_t o = 0; o < objectives.size(); ++o) out.f64(objectives[o]);
    }

    static bool readObjectives(util::ByteReader& in, Objectives& objectives) {
        std::uint8_t size = 0;
        if (!in.u8(size) || size > Objectives::kMaxObjectives) return false;
        std::array<double, Objectives::kMaxObjectives> values{};
        for (std::uint8_t o = 0; o < size; ++o)
            if (!in.f64(values[o])) return false;
        objectives = Objectives(std::span<const double>(values.data(), size));
        return true;
    }

    /// Payload layout (container framing, versioning and checksumming live
    /// in durable::): generation counter, then per island its strategy
    /// tag, evaluation counter, RNG stream, anneal walk state, and the
    /// archive entries in residence order.  The draft/estimate buffers are
    /// transient (cleared at each generation start) and excluded.
    std::vector<std::uint8_t> serializeState(const std::vector<Island>& islands, int done) const
        requires CheckpointableProblem<P>
    {
        util::ByteWriter out;
        out.u32(static_cast<std::uint32_t>(done));
        out.u32(static_cast<std::uint32_t>(islands.size()));
        for (const Island& island : islands) {
            out.u8(static_cast<std::uint8_t>(island.strategy));
            out.u64(island.evaluations);
            island.rng.serialize(out);
            out.boolean(island.current.has_value());
            if (island.current.has_value()) {
                problem_.serializeGenome(*island.current, out);
                writeObjectives(out, island.currentObjectives);
            }
            const auto& entries = island.archive.entries();
            out.u32(static_cast<std::uint32_t>(entries.size()));
            for (const Entry& e : entries) {
                problem_.serializeGenome(e.genome, out);
                writeObjectives(out, e.objectives);
            }
        }
        return out.take();
    }

    struct RestoredState {
        std::vector<Island> islands;
        int done = 0;
    };

    std::optional<RestoredState> deserializeState(std::span<const std::uint8_t> payload) const
        requires CheckpointableProblem<P>
    {
        util::ByteReader in(payload);
        std::uint32_t done = 0, islandCount = 0;
        if (!in.u32(done) || !in.u32(islandCount)) return std::nullopt;
        if (islandCount != static_cast<std::uint32_t>(options_.islands)) return std::nullopt;
        if (done > static_cast<std::uint32_t>(options_.generations)) return std::nullopt;
        RestoredState state;
        state.done = static_cast<int>(done);
        state.islands.reserve(islandCount);
        for (std::uint32_t i = 0; i < islandCount; ++i) {
            Island island{Archive(options_.archiveCap, options_.epsilon), util::Rng(0)};
            std::uint8_t strategy = 0;
            bool hasCurrent = false;
            if (!in.u8(strategy) || strategy > static_cast<std::uint8_t>(Strategy::Genetic))
                return std::nullopt;
            island.strategy = static_cast<Strategy>(strategy);
            if (!in.u64(island.evaluations)) return std::nullopt;
            if (!util::Rng::deserialize(in, island.rng)) return std::nullopt;
            if (!in.boolean(hasCurrent)) return std::nullopt;
            if (hasCurrent) {
                auto genome = problem_.deserializeGenome(in);
                if (!genome.has_value()) return std::nullopt;
                island.current = std::move(*genome);
                if (!readObjectives(in, island.currentObjectives)) return std::nullopt;
            }
            std::uint32_t entryCount = 0;
            if (!in.u32(entryCount)) return std::nullopt;
            std::vector<Entry> entries;
            entries.reserve(entryCount);
            for (std::uint32_t k = 0; k < entryCount; ++k) {
                auto genome = problem_.deserializeGenome(in);
                Objectives objectives;
                if (!genome.has_value() || !readObjectives(in, objectives)) return std::nullopt;
                entries.push_back(Entry{std::move(*genome), objectives});
            }
            island.archive.restoreEntries(std::move(entries));
            state.islands.push_back(std::move(island));
        }
        if (!in.ok() || in.remaining() != 0) return std::nullopt;
        return state;
    }

    Result resumeLoaded(const std::string& path, const durable::LoadedCheckpoint& loaded) const
        requires CheckpointableProblem<P>
    {
        if (loaded.digest != checkpointDigest())
            throw durable::CheckpointError(
                path + ": problem digest mismatch (checkpoint belongs to a different "
                       "search configuration)");
        auto state = deserializeState(std::span<const std::uint8_t>(loaded.payload));
        if (!state.has_value())
            throw durable::CheckpointError(path + ": malformed checkpoint payload");
        return runEpochs(state->islands, state->done);
    }

    /// Drafted candidates -> one batched estimate -> ordered inserts.
    void evaluateDraft(Island& island) const {
        island.estimates.assign(island.draft.size(), Objectives{});
        problem_.evaluate(std::span<const Genome>(island.draft),
                          std::span<Objectives>(island.estimates));
        island.evaluations += island.draft.size();
    }

    void seedIsland(Island& island, std::span<const Entry> seeded) const {
        island.draft.clear();
        for (int s = 0; s < options_.seedsPerIsland; ++s)
            island.draft.push_back(problem_.random(island.rng));
        // Every strategy needs a parent: an island left empty (no random
        // seeds, no shared knowledge) still gets one random genome.
        if (island.draft.empty() && seeded.empty())
            island.draft.push_back(problem_.random(island.rng));
        if (!island.draft.empty()) {
            evaluateDraft(island);
            for (std::size_t k = 0; k < island.draft.size(); ++k)
                island.archive.insert(std::move(island.draft[k]), island.estimates[k]);
        }
        for (const Entry& e : seeded) island.archive.insert(e.genome, e.objectives);
    }

    void generation(Island& island, int gen) const {
        island.draft.clear();
        const auto& entries = island.archive.entries();
        switch (island.strategy) {
            case Strategy::HillClimb:
                // batch == 1 is exactly the legacy serial pattern: one
                // parent draw, one mutation, one insert per step.
                for (int k = 0; k < options_.batch; ++k) {
                    const Genome& parent = entries[island.rng.index(entries.size())].genome;
                    island.draft.push_back(problem_.mutate(parent, island.rng));
                }
                break;
            case Strategy::Anneal:
                if (!island.current.has_value()) {
                    const Entry& start = entries[island.rng.index(entries.size())];
                    island.current = start.genome;
                    island.currentObjectives = start.objectives;
                }
                for (int k = 0; k < options_.batch; ++k)
                    island.draft.push_back(problem_.mutate(*island.current, island.rng));
                break;
            case Strategy::Genetic:
                for (int k = 0; k < options_.batch; ++k) {
                    const Genome& a = entries[island.rng.index(entries.size())].genome;
                    const Genome& b = entries[island.rng.index(entries.size())].genome;
                    island.draft.push_back(
                        problem_.mutate(problem_.crossover(a, b, island.rng), island.rng));
                }
                break;
        }
        evaluateDraft(island);

        if (island.strategy == Strategy::Anneal) {
            const double t = temperature(gen);
            for (std::size_t k = 0; k < island.draft.size(); ++k) {
                // Scale-free acceptance: the worst relative worsening over
                // the objectives is the "energy" delta.  d == 0 (nowhere
                // worse) always moves; otherwise Metropolis at the epoch
                // temperature.  The walk only steers exploration — every
                // candidate still offers itself to the archive below.
                double d = 0.0;
                for (std::size_t o = 0; o < island.estimates[k].size(); ++o) {
                    const double cur = island.currentObjectives[o];
                    const double rel = (island.estimates[k][o] - cur) /
                                       (std::abs(cur) + 1e-12);
                    d = std::max(d, rel);
                }
                if (d <= 0.0 || island.rng.uniformReal(0.0, 1.0) < std::exp(-d / t)) {
                    island.current = island.draft[k];
                    island.currentObjectives = island.estimates[k];
                }
            }
        }
        for (std::size_t k = 0; k < island.draft.size(); ++k)
            island.archive.insert(std::move(island.draft[k]), island.estimates[k]);
    }

    double temperature(int gen) const {
        const double t0 = options_.annealStartTemp, t1 = options_.annealEndTemp;
        if (options_.generations <= 1) return t1;
        const double f = static_cast<double>(gen) / static_cast<double>(options_.generations - 1);
        return t0 * std::pow(t1 / t0, f);
    }

    /// Ring migration on pre-epoch snapshots: island i receives up to
    /// `migrants` entries from island i-1, spread along the archive's
    /// cost-like axis (sort + endpoint-exact thinning, so the donor's
    /// extremes always travel).  Runs serially in island order; inserts
    /// consume no RNG, so migration never perturbs the island streams.
    void migrate(std::vector<Island>& islands) const {
        if (options_.migrants <= 0) return;  // migration disabled
        const std::size_t n = islands.size();
        // Select by index first — genomes can be heavy (CGP gene
        // vectors), so only the <= `migrants` picked entries are copied,
        // never a whole archive.  The (value, index) sort key makes tie
        // order fully specified.
        std::vector<std::vector<Entry>> outbound(n);
        std::vector<std::pair<double, std::size_t>> order;
        for (std::size_t i = 0; i < n; ++i) {
            const std::vector<Entry>& entries = islands[i].archive.entries();
            if (entries.empty()) continue;
            const std::size_t axis = entries.front().objectives.size() - 1;
            order.clear();
            order.reserve(entries.size());
            for (std::size_t k = 0; k < entries.size(); ++k)
                order.emplace_back(entries[k].objectives[axis], k);
            std::sort(order.begin(), order.end());
            util::thinUniform(order, static_cast<std::size_t>(options_.migrants));
            outbound[i].reserve(order.size());
            for (const auto& [value, k] : order) outbound[i].push_back(entries[k]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            detail::searchMetrics().migrants.add(outbound[(i + n - 1) % n].size());
            for (const Entry& e : outbound[(i + n - 1) % n])
                islands[i].archive.insert(e.genome, e.objectives);
        }
    }

    const P& problem_;
    Options options_;
};

}  // namespace axf::search
