#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/search/objectives.hpp"
#include "src/util/select.hpp"

namespace axf::search {

/// Non-dominated archive over any genome type — the generalization of the
/// 2-objective `ArchiveEntry` archive that used to live inside the AutoAx
/// DSE, now k-objective (up to `Objectives::kMaxObjectives`, all
/// minimized) with an optional epsilon-dominance coarsening knob.
///
/// Semantics (kept bit-compatible with the legacy `archiveInsert` for the
/// 2-objective, epsilon = 0 configuration):
///  - a candidate equal (by `operator==`) to an archived genome is
///    rejected;
///  - a candidate dominated by any archived entry is rejected;
///  - an accepted candidate erases every entry it dominates and is
///    appended, so entry order is insertion order compacted by erasures;
///  - when a nonzero `cap` overflows, entries are sorted along the LAST
///    objective axis (the cost-like axis by convention) and thinned
///    uniformly with the endpoint-exact stride (`util::thinUniform`), so
///    both extremes always survive.
///
/// The archive is a plain value type: copying it snapshots a search state
/// (island migration does exactly that), and no member allocates beyond
/// the entry vector.
template <typename Genome>
class ParetoArchive {
public:
    struct Entry {
        Genome genome;
        Objectives objectives;
    };

    ParetoArchive() = default;
    explicit ParetoArchive(std::size_t cap, double epsilon = 0.0)
        : cap_(cap), epsilon_(epsilon) {}

    std::size_t cap() const { return cap_; }
    double epsilon() const { return epsilon_; }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const std::vector<Entry>& entries() const { return entries_; }
    const Entry& operator[](std::size_t i) const { return entries_[i]; }

    /// Inserts a candidate under the rules above; returns true when the
    /// candidate entered the archive.
    bool insert(Genome genome, const Objectives& objectives) {
        for (const Entry& e : entries_) {
            if (e.genome == genome) return false;  // already archived
            if (dominates(e.objectives, objectives, epsilon_)) return false;
        }
        std::erase_if(entries_, [&](const Entry& e) {
            return dominates(objectives, e.objectives, epsilon_);
        });
        entries_.push_back(Entry{std::move(genome), objectives});
        if (cap_ > 0 && entries_.size() > cap_) thin();
        return true;
    }

    /// Inserts every entry of `other` in its order (block-ordered merges
    /// over islands call this island by island).
    void merge(const ParetoArchive& other) {
        for (const Entry& e : other.entries_) insert(e.genome, e.objectives);
    }

    /// Adopt `entries` verbatim as the archive contents — the checkpoint
    /// restore path.  Deliberately bypasses insert(): a snapshot is by
    /// construction mutually non-dominated under this archive's epsilon,
    /// and replaying it through the epsilon-coarsened insert could reject
    /// entries that were legitimately resident, breaking resume bit-
    /// identity.  Entry order is preserved (it is part of search state).
    void restoreEntries(std::vector<Entry> entries) { entries_ = std::move(entries); }

private:
    void thin() {
        const std::size_t axis = entries_.front().objectives.size() - 1;
        std::sort(entries_.begin(), entries_.end(), [axis](const Entry& a, const Entry& b) {
            return a.objectives[axis] < b.objectives[axis];
        });
        util::thinUniform(entries_, cap_);
    }

    std::vector<Entry> entries_;
    std::size_t cap_ = 0;
    double epsilon_ = 0.0;
};

}  // namespace axf::search
