#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/search/objectives.hpp"
#include "src/util/bytes.hpp"
#include "src/util/rng.hpp"

namespace axf::search {

/// Minimal reference implementation of the `Problem` concept, shared by
/// the unit tests and the `BM_IslandSearch` micro-benchmark (one copy, so
/// concept changes propagate to both).  Genomes are int vectors over a
/// `[0, Alphabet)` menu; objective 0 is the squared distance to the
/// all-(Alphabet-1) target (quality), objective 1 is the element sum
/// (cost) — the true front is the staircase between all-zeros and
/// all-max.  Evaluation is near-free, which is exactly what a search
/// *engine* fixture wants: it times drafts, dominance scans, thinning
/// and migration rather than any estimator.
template <std::size_t Len, int Alphabet>
struct ToyProblem {
    using Genome = std::vector<int>;
    static constexpr std::size_t kLen = Len;

    std::size_t objectiveCount() const { return 2; }

    Genome random(util::Rng& rng) const {
        Genome g(kLen);
        for (int& v : g) v = static_cast<int>(rng.index(Alphabet));
        return g;
    }
    Genome mutate(const Genome& g, util::Rng& rng) const {
        Genome c = g;
        c[rng.index(kLen)] = static_cast<int>(rng.index(Alphabet));
        return c;
    }
    Genome crossover(const Genome& a, const Genome& b, util::Rng& rng) const {
        Genome c = a;
        for (std::size_t i = 0; i < kLen; ++i)
            if (rng.bernoulli(0.5)) c[i] = b[i];
        return c;
    }
    /// Checkpoint hooks (`CheckpointableProblem`), so the engine-level
    /// resume-determinism tests run on this fixture too.
    void serializeGenome(const Genome& g, util::ByteWriter& out) const {
        for (int v : g) out.u8(static_cast<std::uint8_t>(v));
    }
    std::optional<Genome> deserializeGenome(util::ByteReader& in) const {
        Genome g(kLen);
        for (std::size_t i = 0; i < kLen; ++i) {
            std::uint8_t v = 0;
            if (!in.u8(v) || v >= Alphabet) return std::nullopt;
            g[i] = v;
        }
        return g;
    }

    void evaluate(std::span<const Genome> batch, std::span<Objectives> out) const {
        constexpr double target = Alphabet - 1;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            double dist = 0.0, sum = 0.0;
            for (int v : batch[i]) {
                dist += (target - v) * (target - v);
                sum += v;
            }
            out[i] = Objectives{dist, sum};
        }
    }
};

}  // namespace axf::search
