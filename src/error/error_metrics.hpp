#pragma once

#include <cstdint>
#include <string>

#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"
#include "src/util/rng.hpp"

namespace axf::error {

/// Error profile of an approximate arithmetic circuit against the exact
/// operator.  All distance metrics are computed over the evaluated input
/// set (exhaustive when feasible, stratified-sampled otherwise).
struct ErrorReport {
    /// Mean Error Distance *relative to the maximum output value*, the
    /// paper's headline quality metric ("average of the absolute error
    /// difference across all the input combinations relative to the
    /// maximum number of outputs", Han & Orshansky normalization).
    double med = 0.0;
    double meanAbsoluteError = 0.0;   ///< unnormalized mean |approx - exact|
    double worstCaseError = 0.0;      ///< max |approx - exact|
    double meanRelativeError = 0.0;   ///< mean |err| / max(1, exact)
    double errorProbability = 0.0;    ///< fraction of inputs with any error
    double meanSquaredError = 0.0;
    std::uint64_t vectorsEvaluated = 0;
    bool exhaustive = false;

    bool isExact() const { return errorProbability == 0.0; }
    std::string summary() const;
};

/// Evaluation policy.  `exhaustiveLimit` bounds the input-space size (in
/// vectors) up to which exhaustive sweep is used; larger spaces fall back
/// to `sampleCount` pseudo-random vectors drawn with the given seed.
struct ErrorAnalysisConfig {
    std::uint64_t exhaustiveLimit = 1ull << 16;  ///< 8x8 operators stay exhaustive
    std::uint64_t sampleCount = 1ull << 14;
    std::uint64_t seed = 0xE5527;
    /// Worker threads: 0 = use the whole process-wide pool, 1 = force
    /// serial, N > 1 = cap the fan-out at N threads.  The input space is
    /// partitioned into fixed-size chunks whose partial results merge in
    /// chunk order, so the report is bit-identical for every thread count.
    int threads = 0;
};

/// Computes the error profile of `netlist` implementing `sig`.
///
/// The netlist interface must be LSB-first operand A bits, then operand B
/// bits; outputs LSB-first.  Throws std::invalid_argument on arity mismatch.
///
/// Runs on the compiled multi-word engine (`BatchSimulator`, 256 lanes per
/// sweep), thread-parallel over input-space chunks per `config.threads`.
ErrorReport analyzeError(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config = {});

/// Reference implementation on the one-word-at-a-time interpreter
/// (`Simulator`), retained for differential testing and as the benchmark
/// baseline the compiled engine is measured against.  Always serial.
ErrorReport analyzeErrorBaseline(const circuit::Netlist& netlist,
                                 const circuit::ArithSignature& sig,
                                 const ErrorAnalysisConfig& config = {});

/// True when the circuit matches the exact operator on every evaluated
/// vector (exhaustive for spaces within the config limit).
bool isFunctionallyExact(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config = {});

}  // namespace axf::error
