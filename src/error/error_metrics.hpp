#pragma once

#include <cstdint>
#include <string>

#include "src/circuit/arith.hpp"
#include "src/circuit/netlist.hpp"
#include "src/util/bytes.hpp"
#include "src/util/cancellation.hpp"
#include "src/util/rng.hpp"

namespace axf::error {

/// Error profile of an approximate arithmetic circuit against the exact
/// operator.  All distance metrics are computed over the evaluated input
/// set (exhaustive when feasible, stratified-sampled otherwise).
struct ErrorReport {
    /// Mean Error Distance *relative to the maximum output value*, the
    /// paper's headline quality metric ("average of the absolute error
    /// difference across all the input combinations relative to the
    /// maximum number of outputs", Han & Orshansky normalization).
    double med = 0.0;
    double meanAbsoluteError = 0.0;   ///< unnormalized mean |approx - exact|
    double worstCaseError = 0.0;      ///< max |approx - exact|
    double meanRelativeError = 0.0;   ///< mean |err| / max(1, exact)
    double errorProbability = 0.0;    ///< fraction of inputs with any error
    double meanSquaredError = 0.0;
    std::uint64_t vectorsEvaluated = 0;
    bool exhaustive = false;

    /// Provably exact: zero error over the *exhaustive* input space.  A
    /// sampled report can never prove exactness (a mismatch may hide in the
    /// unsampled vectors), so this is false for sampled reports even when
    /// no mismatch was observed.
    bool isExact() const { return exhaustive && errorProbability == 0.0; }

    /// No mismatch on the evaluated vectors — the weaker, sampled-friendly
    /// predicate ("exact as far as the evaluation can tell").  Equal to
    /// `isExact()` whenever the report is exhaustive.
    bool observedExact() const { return errorProbability == 0.0; }

    std::string summary() const;

    /// Fixed-order binary encoding for the characterization cache.
    void serialize(util::ByteWriter& out) const;
    /// Decodes a report written by `serialize`; false on truncated input
    /// (the reader is left failed, `out` unspecified).
    static bool deserialize(util::ByteReader& in, ErrorReport& out);
};

/// Evaluation policy.  `exhaustiveLimit` bounds the input-space size (in
/// vectors) up to which exhaustive sweep is used; larger spaces fall back
/// to `sampleCount` pseudo-random vectors drawn with the given seed.
struct ErrorAnalysisConfig {
    std::uint64_t exhaustiveLimit = 1ull << 16;  ///< 8x8 operators stay exhaustive
    std::uint64_t sampleCount = 1ull << 14;
    std::uint64_t seed = 0xE5527;
    /// Worker threads: 0 = use the whole process-wide pool, 1 = force
    /// serial, N > 1 = cap the fan-out at N threads.  The input space is
    /// partitioned into fixed-size chunks whose partial results merge in
    /// chunk order, so the report is bit-identical for every thread count.
    int threads = 0;

    /// Cooperative cancellation checked at chunk boundaries (nullptr =
    /// never cancelled).  Not part of the cache key or the report — it
    /// only decides whether the sweep finishes.  NOTE: config literals
    /// initialize this struct positionally in several call sites; new
    /// fields go at the end.
    const util::CancellationToken* cancel = nullptr;

    /// True when `sig`'s input space is swept exhaustively under this
    /// config.  The single source of truth for the analyzer's path choice
    /// AND the characterization-cache key canonicalization — keep it that
    /// way, or cached reports could be served for the wrong policy.
    bool isExhaustiveFor(const circuit::ArithSignature& sig) const {
        const int inputWidth = sig.inputWidth();
        return inputWidth < 64 && (std::uint64_t{1} << inputWidth) <= exhaustiveLimit;
    }
};

/// Computes the error profile of `netlist` implementing `sig`.
///
/// The netlist interface must be LSB-first operand A bits, then operand B
/// bits; outputs LSB-first.  Throws std::invalid_argument on arity mismatch.
///
/// Runs on the compiled multi-word engine (`BatchSimulator`, 256/512/1024
/// lanes per sweep following the program's chosen block width),
/// thread-parallel over input-space chunks per `config.threads`.  Reports
/// are bit-identical across block widths, kernel backends and thread
/// counts.
ErrorReport analyzeError(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config = {});

/// Reference implementation on the one-word-at-a-time interpreter
/// (`Simulator`), retained for differential testing and as the benchmark
/// baseline the compiled engine is measured against.  Always serial.
ErrorReport analyzeErrorBaseline(const circuit::Netlist& netlist,
                                 const circuit::ArithSignature& sig,
                                 const ErrorAnalysisConfig& config = {});

/// True when the circuit matches the exact operator on every evaluated
/// vector (exhaustive for spaces within the config limit).
bool isFunctionallyExact(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config = {});

}  // namespace axf::error
