#include "src/error/error_metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/circuit/batch_sim.hpp"
#include "src/circuit/kernels.hpp"
#include "src/circuit/simulator.hpp"
#include "src/error/accumulator.hpp"
#include "src/util/thread_pool.hpp"

namespace axf::error {

namespace {

using circuit::BatchSimulator;
using circuit::CompiledNetlist;
using circuit::Simulator;
// The accumulator, decoders and exact-value fill are shared with the
// fault-injection campaign engine (src/error/accumulator.hpp): both
// evaluation loops must produce the exact same IEEE operation order.
using namespace error::detail;

/// Vectors per work chunk.  Fixed (never derived from the thread count) so
/// the chunk decomposition — and therefore every floating-point merge
/// order — is identical no matter how many workers execute it.  8192
/// vectors (32 blocks at the 256-lane baseline, a multiple of every block
/// size in the width set): coarse enough to amortize scheduling, fine
/// enough that an exhaustive 8x8 analysis (65,536 vectors) still splits
/// into 8 chunks.
constexpr std::uint64_t kChunkVectors = 1ull << 13;
static_assert(kChunkVectors % circuit::CompiledNetlist::kMaxLanesPerBlock == 0,
              "chunks must decompose into whole blocks at every width");

/// Evaluates exhaustive vectors [begin, end); `begin` is block-aligned by
/// construction (chunk size is a multiple of every block size in the width
/// set).  The sweep follows the compiled program's chosen block width;
/// accumulation stays pinned at 256-lane sub-blocks inside consumeBlock,
/// so results are bit-identical at every width.
Accumulator exhaustiveChunk(const CompiledNetlist& compiled, const circuit::ArithSignature& sig,
                            std::uint64_t begin, std::uint64_t end) {
    BatchSimulator sim(compiled);
    Workspace ws;
    const int totalBits = sig.inputWidth();
    const std::size_t words = compiled.blockWords();
    const std::size_t blockLanes = compiled.blockLanes();
    ws.in.resize(static_cast<std::size_t>(totalBits) * words);
    ws.out.resize(compiled.outputCount() * words);

    Accumulator acc;
    for (std::uint64_t base = begin; base < end; base += blockLanes) {
        const std::size_t lanes =
            static_cast<std::size_t>(std::min<std::uint64_t>(blockLanes, end - base));
        circuit::fillExhaustiveBlock(ws.in, totalBits, base, words);
        sim.evaluate(ws.in, ws.out);
        fillExactExhaustive(ws, sig, base, lanes);
        consumeBlock(ws.out, compiled.outputCount(), lanes, acc, ws, words);
    }
    return acc;
}

/// Evaluates `count` sampled vectors with the chunk's own generator.
/// Every lane bit is an independent fair coin, which is exactly a uniform
/// draw over the (power-of-two) operand spaces.
Accumulator sampledChunk(const CompiledNetlist& compiled, const circuit::ArithSignature& sig,
                         std::uint64_t chunkSeed, std::uint64_t count) {
    BatchSimulator sim(compiled);
    Workspace ws;
    const int totalBits = sig.inputWidth();
    const std::size_t words = compiled.blockWords();
    const std::size_t blockLanes = compiled.blockLanes();
    ws.in.resize(static_cast<std::size_t>(totalBits) * words);
    ws.out.resize(compiled.outputCount() * words);

    util::Rng rng(chunkSeed);
    std::array<std::uint64_t, kMaxLanes> as{}, bs{};
    Accumulator acc;
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::size_t lanes =
            static_cast<std::size_t>(std::min<std::uint64_t>(blockLanes, remaining));
        // The draw stream is pinned to the W = 4 oracle: draws happen in
        // 4-word (256-lane) sub-blocks, bit-major within each, so lane L
        // sees the exact word the oracle's block L/256 would have drawn.
        // (A final partial block may draw surplus words; it is always the
        // chunk's last block, so nothing else consumes the stream.)
        constexpr std::size_t kSubWords = circuit::kernels::kBaseWideWords;
        for (std::size_t sub = 0; sub < words; sub += kSubWords)
            for (std::size_t bit = 0; bit < static_cast<std::size_t>(totalBits); ++bit)
                for (std::size_t w = 0; w < kSubWords; ++w)
                    ws.in[bit * words + sub + w] = rng.uniformInt(0, ~std::uint64_t{0});
        sim.evaluate(ws.in, ws.out);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            std::uint64_t a = 0, b = 0;
            for (int bit = 0; bit < sig.widthA; ++bit)
                a |= ((ws.in[static_cast<std::size_t>(bit) * words + lane / 64] >> (lane % 64)) &
                      1u)
                     << bit;
            for (int bit = 0; bit < sig.widthB; ++bit)
                b |= ((ws.in[static_cast<std::size_t>(sig.widthA + bit) * words + lane / 64] >>
                       (lane % 64)) &
                      1u)
                     << bit;
            as[lane] = a;
            bs[lane] = b;
        }
        if (sig.op == circuit::ArithOp::Adder) {
            for (std::size_t lane = 0; lane < lanes; ++lane)
                ws.exact[lane] = as[lane] + bs[lane];
        } else {
            for (std::size_t lane = 0; lane < lanes; ++lane)
                ws.exact[lane] = as[lane] * bs[lane];
        }
        consumeBlock(ws.out, compiled.outputCount(), lanes, acc, ws, words);
        remaining -= lanes;
    }
    return acc;
}

void checkInterface(const circuit::Netlist& netlist, const circuit::ArithSignature& sig) {
    if (static_cast<int>(netlist.inputCount()) != sig.inputWidth())
        throw std::invalid_argument("analyzeError: netlist input width != signature");
    if (static_cast<int>(netlist.outputCount()) != sig.outputWidth())
        throw std::invalid_argument("analyzeError: netlist output width != signature");
}

}  // namespace

std::string ErrorReport::summary() const {
    std::ostringstream os;
    os << "MED=" << med * 100.0 << "% MAE=" << meanAbsoluteError << " WCE=" << worstCaseError
       << " EP=" << errorProbability * 100.0 << "%"
       << (exhaustive ? " (exhaustive)" : " (sampled)");
    return os.str();
}

ErrorReport analyzeError(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config) {
    checkInterface(netlist, sig);

    const CompiledNetlist compiled = CompiledNetlist::compile(netlist);
    const int totalBits = sig.inputWidth();
    const bool exhaustive = config.isExhaustiveFor(sig);
    const std::uint64_t vectors = exhaustive ? std::uint64_t{1} << totalBits : config.sampleCount;
    const std::uint64_t chunkCount = (vectors + kChunkVectors - 1) / kChunkVectors;

    // Work is dispatched as tasks of `chunksPerTask` consecutive chunks so
    // the partial-accumulator array stays bounded for huge input spaces
    // (the grouping depends only on the vector count, never on the thread
    // count, preserving the bit-identical-at-any-parallelism guarantee).
    // Up to kMaxTasks (>= any realistic core count) the task is a single
    // chunk, i.e. full scheduling granularity.
    constexpr std::uint64_t kMaxTasks = 1024;
    const std::uint64_t chunksPerTask = (chunkCount + kMaxTasks - 1) / kMaxTasks;
    const std::size_t taskCount = chunkCount == 0
                                      ? 0
                                      : static_cast<std::size_t>(
                                            (chunkCount + chunksPerTask - 1) / chunksPerTask);

    std::vector<Accumulator> parts(std::max<std::size_t>(1, taskCount));
    const auto runTask = [&](std::size_t t) {
        const std::uint64_t firstChunk = static_cast<std::uint64_t>(t) * chunksPerTask;
        const std::uint64_t lastChunk = std::min(chunkCount, firstChunk + chunksPerTask);
        if (exhaustive) {
            const std::uint64_t begin = firstChunk * kChunkVectors;
            const std::uint64_t end = std::min(vectors, lastChunk * kChunkVectors);
            parts[t] = exhaustiveChunk(compiled, sig, begin, end);
        } else {
            // Sample streams stay per-chunk so the draw sequence does not
            // depend on the task grouping.
            for (std::uint64_t c = firstChunk; c < lastChunk; ++c) {
                const std::uint64_t count = std::min(kChunkVectors, vectors - c * kChunkVectors);
                parts[t].merge(sampledChunk(compiled, sig, mixSeed(config.seed + c), count));
            }
        }
    };
    if (config.threads == 1 || taskCount <= 1) {
        for (std::size_t t = 0; t < taskCount; ++t) {
            if (config.cancel != nullptr && config.cancel->stopRequested())
                throw util::OperationCancelled("analyzeError cancelled");
            runTask(t);
        }
    } else {
        // threads > 1 caps the fan-out; 0 uses the whole pool.  The token
        // abandons unclaimed tasks (a partial sweep is useless — no report
        // is produced) and surfaces as OperationCancelled.
        util::ThreadPool::global().parallelFor(
            taskCount, runTask,
            config.threads > 0 ? static_cast<std::size_t>(config.threads) : 0, config.cancel);
    }

    Accumulator acc;
    for (const Accumulator& part : parts) acc.merge(part);
    return acc.report(sig.maxOutput(), exhaustive);
}

ErrorReport analyzeErrorBaseline(const circuit::Netlist& netlist,
                                 const circuit::ArithSignature& sig,
                                 const ErrorAnalysisConfig& config) {
    checkInterface(netlist, sig);

    // The seed implementation, verbatim: one-word-at-a-time interpreter
    // sweeps (per-node switch, frozen here so later Simulator improvements
    // cannot shift the reference), one scalar accumulation chain,
    // count-trailing-zeros output decode.
    std::vector<Word> values(netlist.nodeCount(), 0);
    const auto interpret = [&](std::span<const Word> inputWords, std::span<Word> outputWords) {
        const std::span<const circuit::Node> nodes = netlist.nodes();
        std::size_t nextInput = 0;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const circuit::Node& n = nodes[i];
            Word v = 0;
            switch (n.kind) {
                case circuit::GateKind::Input: v = inputWords[nextInput++]; break;
                case circuit::GateKind::Const0: v = 0; break;
                case circuit::GateKind::Const1: v = ~Word{0}; break;
                case circuit::GateKind::Buf: v = values[n.a]; break;
                case circuit::GateKind::Not: v = ~values[n.a]; break;
                case circuit::GateKind::And: v = values[n.a] & values[n.b]; break;
                case circuit::GateKind::Or: v = values[n.a] | values[n.b]; break;
                case circuit::GateKind::Xor: v = values[n.a] ^ values[n.b]; break;
                case circuit::GateKind::Nand: v = ~(values[n.a] & values[n.b]); break;
                case circuit::GateKind::Nor: v = ~(values[n.a] | values[n.b]); break;
                case circuit::GateKind::Xnor: v = ~(values[n.a] ^ values[n.b]); break;
                case circuit::GateKind::AndNot: v = values[n.a] & ~values[n.b]; break;
                case circuit::GateKind::OrNot: v = values[n.a] | ~values[n.b]; break;
                case circuit::GateKind::Mux:
                    v = (values[n.c] & values[n.b]) | (~values[n.c] & values[n.a]);
                    break;
                case circuit::GateKind::Maj: {
                    const Word a = values[n.a], b = values[n.b], c = values[n.c];
                    v = (a & b) | (a & c) | (b & c);
                    break;
                }
            }
            values[i] = v;
        }
        const std::span<const circuit::NodeId> outs = netlist.outputs();
        for (std::size_t i = 0; i < outs.size(); ++i) outputWords[i] = values[outs[i]];
    };

    struct ScalarAccumulator {
        double absSum = 0.0, relSum = 0.0, sqSum = 0.0;
        std::uint64_t worst = 0, errorCount = 0, total = 0;
        void add(std::uint64_t approx, std::uint64_t exact) {
            const std::uint64_t diff = approx > exact ? approx - exact : exact - approx;
            absSum += static_cast<double>(diff);
            relSum += static_cast<double>(diff) /
                      static_cast<double>(std::max<std::uint64_t>(1, exact));
            sqSum += static_cast<double>(diff) * static_cast<double>(diff);
            worst = std::max(worst, diff);
            if (diff != 0) ++errorCount;
            ++total;
        }
    } acc;

    const int totalBits = sig.inputWidth();
    const bool exhaustive = config.isExhaustiveFor(sig);

    std::vector<Word> in(static_cast<std::size_t>(totalBits));
    std::vector<Word> out(netlist.outputCount());
    std::array<std::uint64_t, 64> approx{};
    const std::uint64_t maskA = (std::uint64_t{1} << sig.widthA) - 1;

    const auto consume64 = [&](std::size_t lanes, auto exact) {
        approx.fill(0);
        for (std::size_t bit = 0; bit < out.size(); ++bit) {
            Word w = out[bit];
            const std::uint64_t weight = std::uint64_t{1} << bit;
            while (w != 0) {
                const int lane = __builtin_ctzll(w);
                approx[static_cast<std::size_t>(lane)] += weight;
                w &= w - 1;
            }
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) acc.add(approx[lane], exact(lane));
    };

    if (exhaustive) {
        const std::uint64_t space = std::uint64_t{1} << totalBits;
        for (std::uint64_t base = 0; base < space; base += 64) {
            const std::size_t lanes =
                static_cast<std::size_t>(std::min<std::uint64_t>(64, space - base));
            for (int bit = 0; bit < totalBits; ++bit) {
                if (bit < 6)
                    in[static_cast<std::size_t>(bit)] =
                        circuit::kExhaustiveLanePattern[static_cast<std::size_t>(bit)];
                else
                    in[static_cast<std::size_t>(bit)] = (base >> bit) & 1u ? ~Word{0} : Word{0};
            }
            interpret(in, out);
            consume64(lanes, [&](std::size_t lane) {
                const std::uint64_t x = base + lane;
                return sig.exact(x & maskA, x >> sig.widthA);
            });
        }
    } else {
        util::Rng rng(config.seed);
        std::array<std::uint64_t, 64> as{}, bs{};
        std::uint64_t remaining = config.sampleCount;
        while (remaining > 0) {
            const std::size_t lanes =
                static_cast<std::size_t>(std::min<std::uint64_t>(64, remaining));
            for (int bit = 0; bit < totalBits; ++bit)
                in[static_cast<std::size_t>(bit)] = rng.uniformInt(0, ~std::uint64_t{0});
            interpret(in, out);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
                std::uint64_t a = 0, b = 0;
                for (int bit = 0; bit < sig.widthA; ++bit)
                    a |= ((in[static_cast<std::size_t>(bit)] >> lane) & 1u) << bit;
                for (int bit = 0; bit < sig.widthB; ++bit)
                    b |= ((in[static_cast<std::size_t>(sig.widthA + bit)] >> lane) & 1u) << bit;
                as[lane] = a;
                bs[lane] = b;
            }
            consume64(lanes, [&](std::size_t lane) { return sig.exact(as[lane], bs[lane]); });
            remaining -= lanes;
        }
    }

    ErrorReport r;
    const double n = static_cast<double>(std::max<std::uint64_t>(1, acc.total));
    r.meanAbsoluteError = acc.absSum / n;
    r.med = sig.maxOutput() == 0 ? 0.0
                                 : r.meanAbsoluteError / static_cast<double>(sig.maxOutput());
    r.worstCaseError = static_cast<double>(acc.worst);
    r.meanRelativeError = acc.relSum / n;
    r.errorProbability = static_cast<double>(acc.errorCount) / n;
    r.meanSquaredError = acc.sqSum / n;
    r.vectorsEvaluated = acc.total;
    r.exhaustive = exhaustive;
    return r;
}

bool isFunctionallyExact(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config) {
    // Documented contract: exact on every *evaluated* vector.  For spaces
    // within the exhaustive limit this is a proof; for sampled spaces it is
    // the best the evaluation can assert (use `ErrorReport::isExact` when
    // a proof is required).
    return analyzeError(netlist, sig, config).observedExact();
}

void ErrorReport::serialize(util::ByteWriter& out) const {
    out.f64(med);
    out.f64(meanAbsoluteError);
    out.f64(worstCaseError);
    out.f64(meanRelativeError);
    out.f64(errorProbability);
    out.f64(meanSquaredError);
    out.u64(vectorsEvaluated);
    out.boolean(exhaustive);
}

bool ErrorReport::deserialize(util::ByteReader& in, ErrorReport& out) {
    in.f64(out.med);
    in.f64(out.meanAbsoluteError);
    in.f64(out.worstCaseError);
    in.f64(out.meanRelativeError);
    in.f64(out.errorProbability);
    in.f64(out.meanSquaredError);
    in.u64(out.vectorsEvaluated);
    in.boolean(out.exhaustive);
    return in.ok();
}

}  // namespace axf::error
