#include "src/error/error_metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/circuit/simulator.hpp"

namespace axf::error {

namespace {

using circuit::Simulator;
using Word = Simulator::Word;

/// Lane patterns for the low six bits of an exhaustively enumerated input
/// index: bit k of lane L is bit k of L.
constexpr std::array<Word, 6> kLanePattern = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};

/// Accumulates metric sums over evaluated (approx, exact) result pairs.
struct Accumulator {
    double absSum = 0.0;
    double relSum = 0.0;
    double sqSum = 0.0;
    std::uint64_t worst = 0;
    std::uint64_t errorCount = 0;
    std::uint64_t total = 0;

    void add(std::uint64_t approx, std::uint64_t exact) {
        const std::uint64_t diff = approx > exact ? approx - exact : exact - approx;
        absSum += static_cast<double>(diff);
        relSum += static_cast<double>(diff) / static_cast<double>(std::max<std::uint64_t>(1, exact));
        sqSum += static_cast<double>(diff) * static_cast<double>(diff);
        worst = std::max(worst, diff);
        if (diff != 0) ++errorCount;
        ++total;
    }

    ErrorReport report(std::uint64_t maxOutput, bool exhaustive) const {
        ErrorReport r;
        const double n = static_cast<double>(std::max<std::uint64_t>(1, total));
        r.meanAbsoluteError = absSum / n;
        r.med = maxOutput == 0 ? 0.0 : r.meanAbsoluteError / static_cast<double>(maxOutput);
        r.worstCaseError = static_cast<double>(worst);
        r.meanRelativeError = relSum / n;
        r.errorProbability = static_cast<double>(errorCount) / n;
        r.meanSquaredError = sqSum / n;
        r.vectorsEvaluated = total;
        r.exhaustive = exhaustive;
        return r;
    }
};

/// Reusable per-analysis workspace (hoisted out of the block loop; the
/// evaluator runs thousands of blocks during CGP fitness evaluation).
struct Workspace {
    std::vector<Word> in;
    std::vector<Word> out;
    std::array<std::uint64_t, 64> approx{};
};

/// Decodes output lane words into per-lane result values and accumulates
/// error against `exact(lane)`.
template <typename ExactFn>
void consumeBlock(const std::vector<Word>& out, std::size_t lanes, ExactFn exact,
                  Accumulator& acc, Workspace& ws) {
    ws.approx.fill(0);
    for (std::size_t bit = 0; bit < out.size(); ++bit) {
        Word w = out[bit];
        if (w == 0) continue;
        const std::uint64_t weight = std::uint64_t{1} << bit;
        while (w != 0) {
            const int lane = __builtin_ctzll(w);
            ws.approx[static_cast<std::size_t>(lane)] += weight;
            w &= w - 1;
        }
    }
    for (std::size_t lane = 0; lane < lanes; ++lane) acc.add(ws.approx[lane], exact(lane));
}

}  // namespace

std::string ErrorReport::summary() const {
    std::ostringstream os;
    os << "MED=" << med * 100.0 << "% MAE=" << meanAbsoluteError << " WCE=" << worstCaseError
       << " EP=" << errorProbability * 100.0 << "%"
       << (exhaustive ? " (exhaustive)" : " (sampled)");
    return os.str();
}

ErrorReport analyzeError(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config) {
    if (static_cast<int>(netlist.inputCount()) != sig.inputWidth())
        throw std::invalid_argument("analyzeError: netlist input width != signature");
    if (static_cast<int>(netlist.outputCount()) != sig.outputWidth())
        throw std::invalid_argument("analyzeError: netlist output width != signature");

    Simulator sim(netlist);
    Accumulator acc;
    const int totalBits = sig.inputWidth();
    const bool exhaustive =
        totalBits < 64 && (std::uint64_t{1} << totalBits) <= config.exhaustiveLimit;

    Workspace ws;
    ws.in.resize(static_cast<std::size_t>(totalBits));
    ws.out.resize(netlist.outputCount());
    const std::uint64_t maskA = (std::uint64_t{1} << sig.widthA) - 1;

    if (exhaustive) {
        const std::uint64_t space = std::uint64_t{1} << totalBits;
        for (std::uint64_t base = 0; base < space; base += 64) {
            const std::size_t lanes =
                static_cast<std::size_t>(std::min<std::uint64_t>(64, space - base));
            // Bits below 6 follow the lane patterns; bits >= 6 are constant
            // across the block and broadcast from the base index.
            for (int bit = 0; bit < totalBits; ++bit) {
                if (bit < 6)
                    ws.in[static_cast<std::size_t>(bit)] = kLanePattern[static_cast<std::size_t>(bit)];
                else
                    ws.in[static_cast<std::size_t>(bit)] = (base >> bit) & 1u ? ~Word{0} : Word{0};
            }
            sim.evaluate(ws.in, ws.out);
            consumeBlock(
                ws.out, lanes,
                [&](std::size_t lane) {
                    const std::uint64_t x = base + lane;
                    return sig.exact(x & maskA, x >> sig.widthA);
                },
                acc, ws);
        }
    } else {
        // Sampled path: every lane bit is an independent fair coin, which is
        // exactly a uniform draw over the (power-of-two) operand spaces.
        util::Rng rng(config.seed);
        std::array<std::uint64_t, 64> as{}, bs{};
        std::uint64_t remaining = config.sampleCount;
        while (remaining > 0) {
            const std::size_t lanes =
                static_cast<std::size_t>(std::min<std::uint64_t>(64, remaining));
            for (int bit = 0; bit < totalBits; ++bit)
                ws.in[static_cast<std::size_t>(bit)] = rng.uniformInt(0, ~std::uint64_t{0});
            sim.evaluate(ws.in, ws.out);
            for (std::size_t lane = 0; lane < lanes; ++lane) {
                std::uint64_t a = 0, b = 0;
                for (int bit = 0; bit < sig.widthA; ++bit)
                    a |= ((ws.in[static_cast<std::size_t>(bit)] >> lane) & 1u) << bit;
                for (int bit = 0; bit < sig.widthB; ++bit)
                    b |= ((ws.in[static_cast<std::size_t>(sig.widthA + bit)] >> lane) & 1u) << bit;
                as[lane] = a;
                bs[lane] = b;
            }
            consumeBlock(
                ws.out, lanes, [&](std::size_t lane) { return sig.exact(as[lane], bs[lane]); },
                acc, ws);
            remaining -= lanes;
        }
    }
    return acc.report(sig.maxOutput(), exhaustive);
}

bool isFunctionallyExact(const circuit::Netlist& netlist, const circuit::ArithSignature& sig,
                         const ErrorAnalysisConfig& config) {
    return analyzeError(netlist, sig, config).isExact();
}

}  // namespace axf::error
