#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/circuit/arith.hpp"
#include "src/circuit/batch_sim.hpp"
#include "src/circuit/kernels.hpp"
#include "src/error/error_metrics.hpp"

/// Shared internals of the error-metric evaluation loops: the deterministic
/// kSlots-wide metric accumulator, the output-plane decoders and the golden
/// exact-value fill.  Used by `analyzeError` (src/error/error_metrics.cpp)
/// and the fault-injection campaign engine (src/fault), which must
/// accumulate with the exact same per-slot IEEE operation order so its
/// reports are reproducible bit-for-bit.  Not a public API.
namespace axf::error::detail {

using Word = circuit::CompiledNetlist::Word;

/// Sizing bound for width-agnostic lane buffers.  The evaluation loops
/// follow each compiled program's *chosen* block width
/// (`CompiledNetlist::blockWords()`, 4 / 8 / 16 words = 256 / 512 / 1024
/// lanes) at runtime; only buffer capacities use the maximum.
inline constexpr std::size_t kMaxWords = circuit::BatchSimulator::kMaxWordsPerBlock;
inline constexpr std::size_t kMaxLanes = circuit::BatchSimulator::kMaxLanesPerBlock;

/// Accumulation granularity every block width must reproduce: wider blocks
/// feed the accumulator in 256-lane sub-blocks (ascending), so the chunk
/// merge sequence — and therefore every IEEE rounding step — is identical
/// to the W = 4 oracle.
inline constexpr std::size_t kBaseLanes = circuit::kernels::kBaseWideLanes;

/// Number of independent accumulation slots; lane i feeds slot i % 8.
/// Eight parallel chains instead of one serial FP dependency lets the
/// metric loop auto-vectorize; the slots reduce in a fixed order, so the
/// result is still fully deterministic.
inline constexpr std::size_t kSlots = 8;

/// Accumulates metric sums over evaluated (approx, exact) result pairs.
struct Accumulator {
    std::array<double, kSlots> absSum{};
    std::array<double, kSlots> relSum{};
    std::array<double, kSlots> sqSum{};
    std::array<std::uint64_t, kSlots> worst{};
    std::array<std::uint64_t, kSlots> errorCount{};
    std::uint64_t total = 0;

    /// Folds one decoded block in, lanes in ascending order.  The slot
    /// chains are computed with explicit kSlots-wide vector extensions:
    /// element-wise IEEE ops in the exact same per-slot order as the
    /// scalar formulation (results are the same bits — GCC's
    /// auto-vectorizer was leaving the divide loop scalar, which dominated
    /// the whole exhaustive analysis).
    template <typename ApproxT>
    void addBlock(const ApproxT* approx, const std::uint64_t* exact, std::size_t lanes) {
        // Alignment downgrades live in second typedefs: fused with
        // vector_size they would be overridden by the vector alignment.
        typedef std::uint64_t VecU0 __attribute__((vector_size(kSlots * 8), may_alias));
        typedef VecU0 VecU __attribute__((aligned(8)));
        typedef double VecD0 __attribute__((vector_size(kSlots * 8), may_alias));
        typedef VecD0 VecD __attribute__((aligned(8)));
        typedef ApproxT VecA0
            __attribute__((vector_size(kSlots * sizeof(ApproxT)), may_alias));
        typedef VecA0 VecA __attribute__((aligned(2)));
        VecD absV = *reinterpret_cast<const VecD*>(absSum.data());
        VecD relV = *reinterpret_cast<const VecD*>(relSum.data());
        VecD sqV = *reinterpret_cast<const VecD*>(sqSum.data());
        VecU worstV = *reinterpret_cast<const VecU*>(worst.data());
        VecU errV = *reinterpret_cast<const VecU*>(errorCount.data());
        const std::size_t vec = lanes & ~(kSlots - 1);
        for (std::size_t g = 0; g < vec; g += kSlots) {
            const VecU e = *reinterpret_cast<const VecU*>(exact + g);
            const VecU ap =
                __builtin_convertvector(*reinterpret_cast<const VecA*>(approx + g), VecU);
            const VecU diff = ap > e ? ap - e : e - ap;
            const VecD d = __builtin_convertvector(diff, VecD);
            absV += d;
            sqV += d * d;
            // (e == 0) is an all-ones lane mask, so e - mask == max(e, 1).
            relV += d / __builtin_convertvector(e - static_cast<VecU>(e == 0), VecD);
            worstV = diff > worstV ? diff : worstV;
            errV += static_cast<VecU>(diff != 0) & 1;
        }
        *reinterpret_cast<VecD*>(absSum.data()) = absV;
        *reinterpret_cast<VecD*>(relSum.data()) = relV;
        *reinterpret_cast<VecD*>(sqSum.data()) = sqV;
        *reinterpret_cast<VecU*>(worst.data()) = worstV;
        *reinterpret_cast<VecU*>(errorCount.data()) = errV;
        for (std::size_t l = vec; l < lanes; ++l) {
            const std::size_t j = l % kSlots;
            const std::uint64_t e = exact[l];
            const std::uint64_t ap = approx[l];
            const std::uint64_t diff = ap > e ? ap - e : e - ap;
            const double d = static_cast<double>(diff);
            absSum[j] += d;
            sqSum[j] += d * d;
            relSum[j] += d / static_cast<double>(e ? e : 1);
            worst[j] = diff > worst[j] ? diff : worst[j];
            errorCount[j] += diff != 0;
        }
        total += lanes;
    }

    /// Folds a later chunk in.  Chunks merge strictly in index order.
    void merge(const Accumulator& o) {
        for (std::size_t j = 0; j < kSlots; ++j) {
            absSum[j] += o.absSum[j];
            relSum[j] += o.relSum[j];
            sqSum[j] += o.sqSum[j];
            worst[j] = std::max(worst[j], o.worst[j]);
            errorCount[j] += o.errorCount[j];
        }
        total += o.total;
    }

    ErrorReport report(std::uint64_t maxOutput, bool exhaustive) const {
        double abs = 0.0, rel = 0.0, sq = 0.0;
        std::uint64_t wc = 0, errs = 0;
        for (std::size_t j = 0; j < kSlots; ++j) {  // fixed reduction order
            abs += absSum[j];
            rel += relSum[j];
            sq += sqSum[j];
            wc = std::max(wc, worst[j]);
            errs += errorCount[j];
        }
        ErrorReport r;
        const double n = static_cast<double>(std::max<std::uint64_t>(1, total));
        r.meanAbsoluteError = abs / n;
        r.med = maxOutput == 0 ? 0.0 : r.meanAbsoluteError / static_cast<double>(maxOutput);
        r.worstCaseError = static_cast<double>(wc);
        r.meanRelativeError = rel / n;
        r.errorProbability = static_cast<double>(errs) / n;
        r.meanSquaredError = sq / n;
        r.vectorsEvaluated = total;
        r.exhaustive = exhaustive;
        return r;
    }
};

/// Decodes output bit-planes of a `blockWords`-wide block into one 16-bit
/// value per lane (outputs <= 16, the 8x8-multiplier case) through the
/// runtime-dispatched kernel backend: AVX-512BW masked broadcast-adds when
/// the CPU has them, the portable sweep otherwise.  Every backend — and
/// every width — decodes to identical bits.
inline void decodeOutputsU16(const Word* out, std::size_t outputs, std::uint16_t* approx,
                             std::size_t blockWords) {
    circuit::kernels::selectedBackend().at(blockWords).decode16(out, outputs, approx);
}

/// Decodes output bit-planes (`outputs` planes of `blockWords` words) into
/// one 32-bit value per lane (outputs <= 32); runtime-dispatched like the
/// 16-bit variant.
inline void decodeOutputsU32(const Word* out, std::size_t outputs, std::uint32_t* approx,
                             std::size_t blockWords) {
    circuit::kernels::selectedBackend().at(blockWords).decode32(out, outputs, approx);
}

/// 64-bit decode for wide interfaces (33..64 outputs); branchless so the
/// compiler can vectorize with variable shifts.
inline void decodeOutputsU64(const Word* out, std::size_t outputs, std::uint64_t* approx,
                             std::size_t blockWords) {
    std::memset(approx, 0, blockWords * 64 * sizeof(std::uint64_t));
    for (std::size_t bit = 0; bit < outputs; ++bit) {
        for (std::size_t w = 0; w < blockWords; ++w) {
            const Word word = out[bit * blockWords + w];
            std::uint64_t* a = approx + w * 64;
            for (std::size_t l = 0; l < 64; ++l)
                a[l] += ((word >> l) & 1u) << bit;
        }
    }
}

/// Per-chunk workspace: input/output blocks plus decoded lane values,
/// sized for the widest block.
struct Workspace {
    std::vector<Word> in;
    std::vector<Word> out;
    alignas(64) std::array<std::uint16_t, kMaxLanes> approx16{};
    alignas(64) std::array<std::uint32_t, kMaxLanes> approx32{};
    alignas(64) std::array<std::uint64_t, kMaxLanes> approx64{};
    alignas(64) std::array<std::uint64_t, kMaxLanes> exact{};
};

/// Decodes a `blockWords`-wide output block and accumulates error against
/// the exact values already filled into `ws.exact`.  Accumulation is
/// pinned at the 256-lane granularity regardless of block width: each
/// kBaseLanes sub-block feeds `addBlock` separately in ascending order, so
/// the slot-chain rounding sequence matches the W = 4 oracle exactly.
inline void consumeBlock(const std::vector<Word>& out, std::size_t outputs, std::size_t lanes,
                         Accumulator& acc, Workspace& ws, std::size_t blockWords) {
    const auto addSubBlocks = [&](const auto* approx) {
        for (std::size_t off = 0; off < lanes; off += kBaseLanes)
            acc.addBlock(approx + off, ws.exact.data() + off,
                         std::min(kBaseLanes, lanes - off));
    };
    if (outputs <= 16) {
        decodeOutputsU16(out.data(), outputs, ws.approx16.data(), blockWords);
        addSubBlocks(ws.approx16.data());
    } else if (outputs <= 32) {
        decodeOutputsU32(out.data(), outputs, ws.approx32.data(), blockWords);
        addSubBlocks(ws.approx32.data());
    } else {
        decodeOutputsU64(out.data(), outputs, ws.approx64.data(), blockWords);
        addSubBlocks(ws.approx64.data());
    }
}

/// Fills `ws.exact[0..lanes)` with the golden operator results (pure
/// integer math — the explicit 8-wide vectors only change how the same
/// values are computed).  The operator branch is hoisted out of the lane
/// loop.
inline void fillExactExhaustive(Workspace& ws, const circuit::ArithSignature& sig,
                                std::uint64_t base, std::size_t lanes) {
    typedef std::uint64_t VecU0 __attribute__((vector_size(64), may_alias));
    typedef VecU0 VecU __attribute__((aligned(8)));
    constexpr std::size_t kVec = 8;
    constexpr VecU kIota = {0, 1, 2, 3, 4, 5, 6, 7};
    const std::uint64_t maskA = (std::uint64_t{1} << sig.widthA) - 1;
    const int shift = sig.widthA;
    const std::size_t vec = lanes & ~(kVec - 1);
    if (sig.op == circuit::ArithOp::Adder) {
        for (std::size_t lane = 0; lane < vec; lane += kVec) {
            const VecU x = (base + lane) + kIota;
            *reinterpret_cast<VecU*>(ws.exact.data() + lane) = (x & maskA) + (x >> shift);
        }
        for (std::size_t lane = vec; lane < lanes; ++lane) {
            const std::uint64_t x = base + lane;
            ws.exact[lane] = (x & maskA) + (x >> shift);
        }
    } else {
        for (std::size_t lane = 0; lane < vec; lane += kVec) {
            const VecU x = (base + lane) + kIota;
            *reinterpret_cast<VecU*>(ws.exact.data() + lane) = (x & maskA) * (x >> shift);
        }
        for (std::size_t lane = vec; lane < lanes; ++lane) {
            const std::uint64_t x = base + lane;
            ws.exact[lane] = (x & maskA) * (x >> shift);
        }
    }
}

/// Splitmix64 step — decorrelates per-chunk sample streams from the seed.
inline std::uint64_t mixSeed(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

}  // namespace axf::error::detail
