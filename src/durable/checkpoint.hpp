#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace axf::durable {

/// On-disk container for campaign snapshots ("AXFK" files).
///
/// Layout (little-endian):
///   u32 magic     "AXFK"
///   u32 version   container version (payload layout is versioned here too:
///                 a payload change bumps this, there is no second number)
///   u32 crc       CRC-32 (IEEE) over every byte after this field
///   u64 digest    problem/options identity of the producer — resume
///                 refuses a checkpoint whose digest does not match the
///                 reconstructed search configuration
///   u64 payloadSize
///   payload       ByteWriter-encoded search state (see IslandSearch)
///
/// Files are written temp-then-atomic-rename with fsync on both the file
/// and its directory (util::atomicWriteFile), so a reader sees either the
/// previous complete snapshot or the new one — never a torn mix.  The
/// same framing is intended as the wire format for future archive deltas
/// (DSE-as-a-service): a delta is just a payload with its own digest.
inline constexpr std::uint32_t kCheckpointMagic = 0x4B465841u;  // "AXFK"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// A checkpoint that exists but cannot be trusted: bad magic/version,
/// checksum mismatch, truncation, or a digest that contradicts the
/// resuming configuration.  Deliberately not silently ignored — a corrupt
/// checkpoint next to hours of campaign state is worth a loud stop.
class CheckpointError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct LoadedCheckpoint {
    std::uint64_t digest = 0;
    std::vector<std::uint8_t> payload;
};

/// Durably write `payload` under `digest` to `path`.  Returns false when
/// the write failed even after retries (callers log and carry on — a
/// failed snapshot must never kill the campaign it protects).
bool writeCheckpoint(const std::string& path, std::uint64_t digest,
                     const std::vector<std::uint8_t>& payload);

/// Load and validate a checkpoint.  Missing file -> nullopt (caller starts
/// fresh); present-but-invalid -> CheckpointError.
std::optional<LoadedCheckpoint> loadCheckpoint(const std::string& path);

/// Validation verdict without the payload — what `axf-lint
/// --audit-checkpoint` prints.  `ok` covers magic, version, size framing
/// and CRC; digest equality is additionally checked when `expectedDigest`
/// is provided.
struct CheckpointAudit {
    bool ok = false;
    std::uint32_t version = 0;
    std::uint64_t digest = 0;
    std::uint64_t payloadBytes = 0;
    std::string message;  ///< human-readable verdict
};

CheckpointAudit auditCheckpoint(const std::string& path,
                                std::optional<std::uint64_t> expectedDigest = std::nullopt);

}  // namespace axf::durable
