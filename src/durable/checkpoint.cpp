#include "src/durable/checkpoint.hpp"

#include <span>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/bytes.hpp"
#include "src/util/crc32.hpp"
#include "src/util/io.hpp"

namespace axf::durable {

namespace {

struct CheckpointMetrics {
    obs::Counter& written = obs::Registry::global().counter("durable.checkpoints_written");
    obs::Counter& writeFailures =
        obs::Registry::global().counter("durable.checkpoint_write_failures");
    obs::Counter& loaded = obs::Registry::global().counter("durable.checkpoints_loaded");
    obs::Counter& bytesWritten = obs::Registry::global().counter("durable.checkpoint_bytes");
    obs::Histogram& writeSeconds =
        obs::Registry::global().histogram("durable.checkpoint_write_seconds");
};

CheckpointMetrics& checkpointMetrics() {
    static CheckpointMetrics* m = new CheckpointMetrics();
    return *m;
}

/// Bytes before the payload: magic, version, crc, digest, payloadSize.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8 + 8;
/// Offset of the first CRC-covered byte (everything after the crc field).
constexpr std::size_t kCrcStart = 4 + 4 + 4;

/// Parse + validate container framing; shared by load and audit.
CheckpointAudit inspect(const std::vector<unsigned char>& bytes) {
    CheckpointAudit audit;
    if (bytes.size() < kHeaderBytes) {
        audit.message = "truncated header (" + std::to_string(bytes.size()) + " bytes)";
        return audit;
    }
    util::ByteReader reader(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
    std::uint32_t magic = 0, crc = 0;
    std::uint64_t payloadSize = 0;
    reader.u32(magic);
    reader.u32(audit.version);
    reader.u32(crc);
    reader.u64(audit.digest);
    reader.u64(payloadSize);
    if (magic != kCheckpointMagic) {
        audit.message = "bad magic (not an AXFK checkpoint)";
        return audit;
    }
    if (audit.version != kCheckpointVersion) {
        audit.message = "unsupported version " + std::to_string(audit.version) + " (expected " +
                        std::to_string(kCheckpointVersion) + ")";
        return audit;
    }
    if (bytes.size() - kHeaderBytes != payloadSize) {
        audit.message = "payload size mismatch (header says " + std::to_string(payloadSize) +
                        ", file has " + std::to_string(bytes.size() - kHeaderBytes) + ")";
        return audit;
    }
    audit.payloadBytes = payloadSize;
    const std::uint32_t actual = util::crc32(bytes.data() + kCrcStart, bytes.size() - kCrcStart);
    if (actual != crc) {
        audit.message = "checksum mismatch (stored " + std::to_string(crc) + ", computed " +
                        std::to_string(actual) + ")";
        return audit;
    }
    audit.ok = true;
    audit.message = "ok";
    return audit;
}

}  // namespace

bool writeCheckpoint(const std::string& path, std::uint64_t digest,
                     const std::vector<std::uint8_t>& payload) {
    obs::Span span("checkpoint_write", path);
    obs::ScopedTimer timer(checkpointMetrics().writeSeconds);
    util::ByteWriter out;
    out.u32(kCheckpointMagic);
    out.u32(kCheckpointVersion);
    out.u32(0);  // crc placeholder, patched below
    out.u64(digest);
    out.u64(payload.size());
    out.raw(payload.data(), payload.size());
    std::vector<std::uint8_t> bytes = out.take();
    const std::uint32_t crc = util::crc32(bytes.data() + kCrcStart, bytes.size() - kCrcStart);
    for (int i = 0; i < 4; ++i) bytes[8 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
    const bool ok = static_cast<bool>(util::atomicWriteFile(path, bytes));
    if (ok) {
        checkpointMetrics().written.add();
        checkpointMetrics().bytesWritten.add(bytes.size());
    } else {
        checkpointMetrics().writeFailures.add();
    }
    return ok;
}

std::optional<LoadedCheckpoint> loadCheckpoint(const std::string& path) {
    obs::Span span("checkpoint_load", path);
    const auto bytes = util::readFileBytes(path);
    if (!bytes) return std::nullopt;
    const CheckpointAudit audit = inspect(*bytes);
    if (!audit.ok) throw CheckpointError(path + ": " + audit.message);
    checkpointMetrics().loaded.add();
    LoadedCheckpoint loaded;
    loaded.digest = audit.digest;
    loaded.payload.assign(bytes->begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
                          bytes->end());
    return loaded;
}

CheckpointAudit auditCheckpoint(const std::string& path,
                                std::optional<std::uint64_t> expectedDigest) {
    const auto bytes = util::readFileBytes(path);
    if (!bytes) {
        CheckpointAudit audit;
        audit.message = "unreadable or missing file";
        return audit;
    }
    CheckpointAudit audit = inspect(*bytes);
    if (audit.ok && expectedDigest && audit.digest != *expectedDigest) {
        audit.ok = false;
        audit.message = "problem digest mismatch (checkpoint was produced by a different "
                        "search configuration)";
    }
    return audit;
}

}  // namespace axf::durable
